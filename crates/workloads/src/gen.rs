//! Kernel-construction helpers shared by the workload generators — and by
//! the `regmutex-fuzz` random kernel generator, which composes the same
//! vocabulary under random parameters.
//!
//! Every Table I application is synthesized from the same vocabulary real
//! GPU kernels exhibit in Fig 1: long *low-pressure* phases (memory access,
//! address arithmetic, a handful of live registers) punctuated by short
//! *high-pressure spikes* where many temporaries are produced and consumed
//! (unrolled filter banks, interpolation stencils, RNG chains). The helpers
//! pin the spike's peak pressure exactly, so each generator reproduces its
//! application's Table I register count.
//!
//! All helpers append instructions to a caller-supplied
//! [`KernelBuilder`]; none of them branch, so control-flow structure
//! (loops, `if` regions, divergence) stays in the caller's hands.
//! Preconditions are `debug_assert`ed — violating them in release builds
//! produces a kernel that may fail [`regmutex_isa::Kernel::validate`] or
//! miss its target pressure, never memory unsafety.

use regmutex_isa::{ArchReg, KernelBuilder, TripCount};

/// Shorthand register constructor.
pub fn r(i: u16) -> ArchReg {
    ArchReg(i)
}

/// Arithmetic flavor of a pressure spike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpikeStyle {
    /// Integer multiply-add chains (sorting, traversal, histogram codes).
    IntMad,
    /// Floating FMA chains (stencils, lattice/force computations).
    FloatFma,
}

/// Emit a pressure spike: define registers `lo..=hi` from varying pairs of
/// `seeds` (mutually independent ops, like real unrolled code), then fold
/// them pairwise into `acc`. With `base_live` registers live around the
/// spike, peak pressure is `base_live + (hi − lo + 1)` at the first folding
/// instruction; callers pick `lo`/`hi` so that this equals the application's
/// register count.
///
/// # Preconditions (debug-asserted)
///
/// * `lo <= hi`;
/// * `acc` and every seed live *below* the spike range (`index < lo`), so
///   the spike registers are pure temporaries;
/// * `seeds` is non-empty.
pub fn pressure_spike(
    b: &mut KernelBuilder,
    lo: u16,
    hi: u16,
    acc: ArchReg,
    style: SpikeStyle,
    seeds: &[ArchReg],
) {
    debug_assert!(lo <= hi);
    debug_assert!(acc.0 < lo, "accumulator must live below the spike range");
    debug_assert!(!seeds.is_empty());
    debug_assert!(
        seeds.iter().all(|s| s.0 < lo),
        "seeds must be base registers"
    );
    let n = seeds.len();
    for (idx, i) in (lo..=hi).enumerate() {
        let a = seeds[idx % n];
        let c = seeds[(idx / n + idx + 1) % n];
        match (style, idx % 2) {
            (SpikeStyle::IntMad, 0) => b.xor(r(i), a, c),
            (SpikeStyle::IntMad, _) => b.shl(r(i), a, c),
            (SpikeStyle::FloatFma, 0) => b.fmul(r(i), a, c),
            (SpikeStyle::FloatFma, _) => b.fadd(r(i), a, c),
        };
    }
    let mut i = lo;
    while i < hi {
        match style {
            SpikeStyle::IntMad => b.imad(acc, r(i), r(i + 1), acc),
            SpikeStyle::FloatFma => b.ffma(acc, r(i), r(i + 1), acc),
        };
        i += 2;
    }
    if i == hi {
        b.iadd(acc, r(hi), acc);
    }
}

/// Emit a dependent-load phase: `loads` global loads whose addresses chain
/// through `acc` (each load's result feeds the next address), using `tmp` as
/// the landing register. This is the latency-bound pattern occupancy hides.
/// `acc` must hold a valid address before the first load (e.g. via
/// [`KernelBuilder::movi`]); `tmp` and `acc` may not alias usefully but any
/// distinct pair of registers is legal.
pub fn dependent_loads(b: &mut KernelBuilder, acc: ArchReg, tmp: ArchReg, loads: u32) {
    for _ in 0..loads {
        b.ld_global(tmp, acc);
        b.iadd(acc, tmp, acc);
    }
}

/// Emit an independent-load phase: loads from `addrs` landing in `tmps`,
/// then folded into `acc` (memory-level parallelism within the warp).
///
/// # Preconditions (debug-asserted)
///
/// `addrs` and `tmps` have the same length. Peak extra pressure is
/// `tmps.len()` (all landing registers live at the first fold).
pub fn independent_loads(b: &mut KernelBuilder, addrs: &[ArchReg], tmps: &[ArchReg], acc: ArchReg) {
    debug_assert_eq!(addrs.len(), tmps.len());
    for (a, t) in addrs.iter().zip(tmps) {
        b.ld_global(*t, *a);
    }
    for t in tmps {
        b.iadd(acc, *t, acc);
    }
}

/// Emit a shared-memory exchange: store `v` at `addr`, barrier, load back.
/// The caller is responsible for keeping the live count at the barrier under
/// the base-set size (deadlock rule 2), for declaring shared memory on the
/// kernel ([`KernelBuilder::shmem_per_cta`]), and for only emitting the
/// barrier in warp-uniform control flow (all warps of the CTA must reach
/// it or the simulator reports a deadlock).
pub fn shared_exchange(b: &mut KernelBuilder, addr: ArchReg, v: ArchReg, out: ArchReg) {
    b.st_shared(addr, v);
    b.bar();
    b.ld_shared(out, addr);
}

/// Standard epilogue: store the result and exit.
pub fn epilogue(b: &mut KernelBuilder, addr: ArchReg, v: ArchReg) {
    b.st_global(addr, v);
    b.exit();
}

/// A warp-varying loop bound around `base` (±`spread`/2), modelling
/// data-dependent trip counts. With `spread == 0` this still resolves
/// per-warp (deterministically from the kernel seed) but every warp runs
/// `base` trips; use [`TripCount::Fixed`] when warp-uniform control flow
/// matters (e.g. a barrier inside the loop).
pub fn varied(base: u32, spread: u32) -> TripCount {
    TripCount::PerWarp { base, spread }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmutex_compiler::analyze;

    #[test]
    fn spike_reaches_exact_pressure() {
        // 3 base regs (r0..r2) live around a spike of r3..r12 (10 regs):
        // peak = 3 + 10 + 1(acc double-counted? acc IS r1 < lo) ...
        // acc = r1 is part of the base 3, so peak = 3 + 10 = 13.
        let mut b = KernelBuilder::new("spike");
        b.movi(r(0), 1).movi(r(1), 2).movi(r(2), 3);
        pressure_spike(&mut b, 3, 12, r(1), SpikeStyle::IntMad, &[r(0), r(1), r(2)]);
        b.st_global(r(0), r(1));
        b.st_global(r(0), r(2));
        b.exit();
        let k = b.build().unwrap();
        let lv = analyze(&k);
        assert_eq!(lv.max_pressure(), 13);
        assert_eq!(k.regs_per_thread, 13);
    }

    #[test]
    fn spike_with_odd_count() {
        let mut b = KernelBuilder::new("spike-odd");
        b.movi(r(0), 1).movi(r(1), 2);
        pressure_spike(&mut b, 2, 6, r(1), SpikeStyle::FloatFma, &[r(0), r(1)]); // 5 regs
        b.st_global(r(0), r(1));
        b.exit();
        let k = b.build().unwrap();
        assert!(k.validate().is_ok());
        assert_eq!(analyze(&k).max_pressure(), 7);
    }

    #[test]
    fn dependent_loads_chain() {
        let mut b = KernelBuilder::new("dep");
        b.movi(r(0), 64);
        dependent_loads(&mut b, r(0), r(1), 3);
        epilogue(&mut b, r(0), r(0));
        let k = b.build().unwrap();
        assert_eq!(
            k.count_ops(|o| matches!(o, regmutex_isa::Op::Ld(regmutex_isa::Space::Global))),
            3
        );
    }

    #[test]
    fn independent_loads_fold() {
        let mut b = KernelBuilder::new("ind");
        b.movi(r(0), 1).movi(r(1), 2).movi(r(4), 0);
        independent_loads(&mut b, &[r(0), r(1)], &[r(2), r(3)], r(4));
        epilogue(&mut b, r(0), r(4));
        let k = b.build().unwrap();
        assert!(k.validate().is_ok());
    }

    #[test]
    fn varied_is_per_warp() {
        assert_eq!(varied(6, 4), TripCount::PerWarp { base: 6, spread: 4 });
        assert_eq!(varied(3, 0), TripCount::PerWarp { base: 3, spread: 0 });
    }

    #[test]
    fn epilogue_stores_then_exits() {
        let mut b = KernelBuilder::new("ep");
        b.movi(r(0), 64).movi(r(1), 7);
        epilogue(&mut b, r(0), r(1));
        let k = b.build().unwrap();
        assert!(matches!(
            k.instrs[k.len() - 2].op,
            regmutex_isa::Op::St(regmutex_isa::Space::Global)
        ));
        assert!(matches!(k.instrs[k.len() - 1].op, regmutex_isa::Op::Exit));
    }

    #[test]
    fn r_is_the_archreg_constructor() {
        assert_eq!(r(5), ArchReg(5));
    }

    #[test]
    fn independent_loads_pressure_is_bounded_by_tmps() {
        let mut b = KernelBuilder::new("ind-pressure");
        b.movi(r(0), 1).movi(r(1), 2).movi(r(2), 3).movi(r(6), 0);
        independent_loads(&mut b, &[r(0), r(1), r(2)], &[r(3), r(4), r(5)], r(6));
        epilogue(&mut b, r(0), r(6));
        let k = b.build().unwrap();
        // Addresses die as their loads consume them; the peak is the last
        // load: its address + 2 landed + 1 landing + acc + epilogue addr.
        assert_eq!(analyze(&k).max_pressure(), 6);
    }

    #[test]
    fn shared_exchange_has_barrier() {
        let mut b = KernelBuilder::new("sh");
        b.movi(r(0), 1).movi(r(1), 2);
        shared_exchange(&mut b, r(0), r(1), r(2));
        epilogue(&mut b, r(0), r(2));
        let k = b.build().unwrap();
        assert_eq!(k.count_ops(|o| matches!(o, regmutex_isa::Op::Bar)), 1);
    }
}
