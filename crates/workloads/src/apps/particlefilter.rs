//! ParticleFilter (Rodinia): sequential Monte-Carlo object tracking.
//!
//! Character: branchy resampling with per-warp varied trip counts and
//! frequent likelihood-evaluation spikes; the paper singles it out (with
//! DWT2D and SAD) as suffering SRP contention because its large `|Es| = 12`
//! leaves only a handful of sections. Table I: 32 regs, `|Bs| = 20`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{dependent_loads, epilogue, pressure_spike, r, varied, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 32;
/// Table I base-set size.
pub const TABLE_BS: u16 = 20;

/// Build the synthetic ParticleFilter kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("ParticleFilter");
    b.threads_per_cta(256).seed(0x9F17);
    // r0 particle cursor, r1 weight acc, r2 state x, r3 state y, r4 noise,
    // r5 threshold.
    for i in 0..6 {
        b.movi(r(i), 0x600 + u64::from(i));
    }
    let frames = b.here();
    {
        // Propagate + weigh particles (branchy, data-dependent).
        let particles = b.here();
        dependent_loads(&mut b, r(0), r(6), 1);
        let cheap = b.new_label();
        b.bra_if(cheap, 400, Some(r(6)));
        b.imul(r(2), r(6), r(2));
        b.iadd(r(3), r(6), r(3));
        b.place(cheap);
        b.bra_loop_pred(particles, varied(3, 4), r(6));
        // Likelihood evaluation + resampling spikes run back to back:
        // r6..r31 = 26; peak = 6 + 26 = 32. The long holds against only a
        // handful of SRP sections (|Es| = 12) are the contention the paper
        // reports for ParticleFilter.
        pressure_spike(
            &mut b,
            6,
            31,
            r(1),
            SpikeStyle::IntMad,
            &[r(2), r(3), r(4), r(5)],
        );
        b.st_global(r(4), r(1));
        pressure_spike(
            &mut b,
            6,
            31,
            r(1),
            SpikeStyle::IntMad,
            &[r(3), r(4), r(5), r(2)],
        );
        b.st_global(r(5), r(1));
        b.bra_loop(frames, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(3));
    b.st_global(r(5), r(0));
    epilogue(&mut b, r(0), r(1));
    b.build()
        .expect("ParticleFilter kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "ParticleFilter",
        kernel: kernel(),
        grid_ctas: 180,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
