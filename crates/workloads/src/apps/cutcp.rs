//! CUTCP (Parboil): cutoff-limited Coulombic potential on a lattice.
//!
//! Character: FMA-dense inner loops over atoms with an SFU reciprocal per
//! distance computation; pressure spikes in the unrolled potential
//! accumulation. Table I: 25 regs (28 rounded), `|Bs| = 20`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 25;
/// Table I base-set size.
pub const TABLE_BS: u16 = 20;

/// Build the synthetic CUTCP kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("CUTCP");
    b.threads_per_cta(256).seed(0xC07C);
    // r0 lattice point, r1 potential acc, r2..r5 atom coordinates base,
    // r6 cutoff.
    for i in 0..7 {
        b.movi(r(i), 0x80 + u64::from(i));
    }
    let atoms = b.here();
    {
        // Distance computation: load an atom, rcp for 1/r.
        let inner = b.here();
        b.ld_global(r(7), r(2));
        b.fadd(r(2), r(7), r(2));
        b.frcp(r(8), r(7));
        b.ffma(r(1), r(8), r(6), r(1));
        b.bra_loop(inner, TripCount::Fixed(5));
        // Unrolled potential accumulation: r7..r24 = 18 regs; peak = 7 + 18
        // = 25.
        pressure_spike(
            &mut b,
            7,
            24,
            r(1),
            SpikeStyle::FloatFma,
            &[r(3), r(4), r(5), r(6)],
        );
        b.st_global(r(0), r(1));
        b.bra_loop(atoms, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(3));
    b.st_global(r(4), r(5));
    b.st_global(r(6), r(0));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("CUTCP kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "CUTCP",
        kernel: kernel(),
        grid_ctas: 180,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
