//! Gaussian (Rodinia): Gaussian elimination.
//!
//! Character: a small row-update kernel with modest register demand (the
//! lightest of the suite); registers never limit occupancy on the baseline
//! GPU, so it belongs to the Fig 8 half-register-file study. Table I: 12
//! regs, `|Bs| = 8`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{dependent_loads, epilogue, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 12;
/// Table I base-set size.
pub const TABLE_BS: u16 = 8;

/// Build the synthetic Gaussian kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("Gaussian");
    b.threads_per_cta(192).seed(0x6A55);
    // r0 row cursor, r1 acc, r2 pivot, r3 multiplier, r4 column base.
    for i in 0..5 {
        b.movi(r(i), 0xA00 + u64::from(i));
    }
    let rows = b.here();
    {
        let cols = b.here();
        dependent_loads(&mut b, r(0), r(5), 1);
        b.fmul(r(5), r(5), r(3));
        b.fadd(r(1), r(5), r(1));
        b.bra_loop(cols, TripCount::Fixed(6));
        // Row-update spike: r5..r11 = 7; peak = 5 + 7 = 12.
        pressure_spike(
            &mut b,
            5,
            11,
            r(1),
            SpikeStyle::FloatFma,
            &[r(2), r(3), r(4)],
        );
        b.st_global(r(4), r(1));
        b.bra_loop(rows, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(3));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("Gaussian kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "Gaussian",
        kernel: kernel(),
        grid_ctas: 300,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
