//! SAD (Parboil): sum-of-absolute-differences block matching (H.264).
//!
//! Character: deeply nested block-match loops whose inner comparison is a
//! frequent, large pressure spike — the paper's example of occupancy gains
//! *not* translating into speedup because the big `|Es| = 12` leaves few SRP
//! sections and warps contend at acquires. Table I: 30 regs (32 rounded),
//! `|Bs| = 20`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{
    dependent_loads, epilogue, independent_loads, pressure_spike, r, varied, SpikeStyle,
};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 30;
/// Table I base-set size.
pub const TABLE_BS: u16 = 20;

/// Build the synthetic SAD kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("SAD");
    b.threads_per_cta(256).seed(0x5AD);
    // r0 block cursor, r1 SAD acc, r2 ref base, r3 cur base, r4 best,
    // r5 stride.
    for i in 0..6 {
        b.movi(r(i), 0x900 + u64::from(i));
    }
    let blocks = b.here();
    {
        let candidates = b.here();
        // Fetch both macroblock rows, then walk the reference window
        // (dependent accesses lengthen the memory phase).
        independent_loads(&mut b, &[r(2), r(3)], &[r(6), r(7)], r(1));
        dependent_loads(&mut b, r(3), r(6), 1);
        b.imin(r(4), r(1), r(4));
        // The row-difference spike runs once per candidate: r6..r29 = 24;
        // peak = 6 + 24 = 30. Spikes are frequent relative to the short
        // fetch phase, which is what drives SRP contention.
        pressure_spike(
            &mut b,
            6,
            29,
            r(1),
            SpikeStyle::IntMad,
            &[r(2), r(3), r(4), r(5)],
        );
        b.imax(r(4), r(1), r(4));
        b.bra_loop(candidates, varied(2, 2));
        b.st_global(r(0), r(4));
        b.bra_loop(blocks, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(3));
    b.st_global(r(5), r(0));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("SAD kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "SAD",
        kernel: kernel(),
        grid_ctas: 180,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
