//! MonteCarlo (CUDA SDK): Monte-Carlo option pricing.
//!
//! Character: per-thread RNG chains feeding a payoff accumulation, with a
//! CTA-wide reduction barrier (11 live registers at the barrier keeps the
//! `|Bs| = 10` candidate out, landing the heuristic on `|Bs| = 12`).
//! Table I: 13 regs (16 rounded), `|Bs| = 12`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 13;
/// Table I base-set size.
pub const TABLE_BS: u16 = 12;

/// Build the synthetic MonteCarlo kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("MonteCarlo");
    b.threads_per_cta(192).seed(0x3047);
    // Persistent: r0 path cursor, r1 payoff acc, r2 rng state, r3 drift,
    // r4 vol, r5 strike, r6 reduction base.
    for i in 0..7 {
        b.movi(r(i), 0xE00 + u64::from(i));
    }
    let batches = b.here();
    {
        // RNG chain + path step; the market-data gather makes the path loop
        // latency-bound, so occupancy matters.
        let pathsteps = b.here();
        b.imul(r(2), r(2), r(3));
        b.xor(r(2), r(2), r(4));
        b.ld_global(r(7), r(2));
        b.fexp(r(8), r(7));
        b.ffma(r(1), r(8), r(5), r(1));
        b.bra_loop(pathsteps, TripCount::Fixed(6));
        // Partial-sum exchange: keep 4 temps (r7..r10) live across the
        // barrier so it carries exactly 7 + 4 = 11 live registers.
        b.iadd(r(7), r(1), r(2));
        b.iadd(r(8), r(1), r(3));
        b.iadd(r(9), r(1), r(4));
        b.iadd(r(10), r(1), r(5));
        b.bar();
        b.st_shared(r(6), r(7));
        b.iadd(r(1), r(8), r(1));
        b.iadd(r(1), r(9), r(1));
        b.iadd(r(1), r(10), r(1));
        // Payoff spike: r7..r12 = 6; peak = 7 + 6 = 13.
        pressure_spike(&mut b, 7, 12, r(1), SpikeStyle::IntMad, &[r(3), r(4), r(5)]);
        b.bra_loop(batches, TripCount::Fixed(4));
    }
    b.st_global(r(3), r(4));
    b.st_global(r(5), r(6));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("MonteCarlo kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "MonteCarlo",
        kernel: kernel(),
        grid_ctas: 210,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    use regmutex_compiler::{analyze, barrier_live_max};

    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }

    #[test]
    fn barrier_carries_exactly_11_live_registers() {
        let k = super::kernel();
        let lv = analyze(&k);
        assert_eq!(barrier_live_max(&k, &lv), 11);
    }
}
