//! RadixSort (CUDA SDK): LSD radix sort.
//!
//! Character: one pass per digit with shared-memory histogram/scatter and a
//! CTA barrier per pass; the bucket-scatter bookkeeping spikes register
//! pressure. Table I: 33 regs (36 rounded), `|Bs| = 30`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{dependent_loads, epilogue, pressure_spike, r, shared_exchange, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 33;
/// Table I base-set size.
pub const TABLE_BS: u16 = 30;

/// Build the synthetic RadixSort kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("RadixSort");
    b.threads_per_cta(128).shmem_per_cta(4096).seed(0x4AD1);
    // r0 key cursor, r1 digit acc, r2 shift, r3 mask, r4 bucket base,
    // r5 scatter base, r6 scratch.
    for i in 0..7 {
        b.movi(r(i), 0x700 + u64::from(i));
    }
    let passes = b.here();
    {
        // Digit extraction over a strip of keys.
        let keys = b.here();
        dependent_loads(&mut b, r(0), r(7), 1);
        b.shr(r(7), r(7), r(2));
        b.and(r(7), r(7), r(3));
        b.iadd(r(1), r(7), r(1));
        b.bra_loop(keys, TripCount::Fixed(4));
        // Scatter bookkeeping spike: r7..r32 = 26; peak = 7 + 26 = 33. The
        // spike runs *before* the histogram barrier, so warps reach their
        // acquires staggered by the key loads rather than in lockstep.
        pressure_spike(
            &mut b,
            7,
            32,
            r(1),
            SpikeStyle::IntMad,
            &[r(2), r(3), r(4), r(5), r(6)],
        );
        // Histogram exchange across the CTA (barrier lives well under |Bs|).
        shared_exchange(&mut b, r(4), r(1), r(7));
        b.iadd(r(1), r(7), r(1));
        b.st_global(r(5), r(1));
        b.bra_loop(passes, TripCount::Fixed(4));
    }
    b.st_global(r(2), r(3));
    b.st_global(r(4), r(6));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("RadixSort kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "RadixSort",
        kernel: kernel(),
        grid_ctas: 300,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
