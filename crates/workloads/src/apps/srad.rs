//! SRAD (Rodinia): speckle-reducing anisotropic diffusion.
//!
//! Character: two image-update phases per iteration (gradient, then
//! diffusion update), each with its own moderate pressure spike; uniform
//! branches gate saturation clamps. Table I: 18 regs (20 rounded),
//! `|Bs| = 12`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, independent_loads, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 18;
/// Table I base-set size.
pub const TABLE_BS: u16 = 12;

/// Build the synthetic SRAD kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("SRAD");
    b.threads_per_cta(160).seed(0x54AD);
    // Persistent: r0 pixel cursor, r1 acc, r2 north base, r3 south base,
    // r4 lambda, r5 q0.
    for i in 0..6 {
        b.movi(r(i), 0x1100 + u64::from(i));
    }
    let iters = b.here();
    {
        // Phase 1: gradient gather + spike (r6..r17 = 12; peak 6 + 12 = 18).
        independent_loads(&mut b, &[r(2), r(3)], &[r(6), r(7)], r(1));
        let noclamp = b.new_label();
        b.bra_if(noclamp, 300, Some(r(1)));
        b.imin(r(1), r(1), r(4));
        b.place(noclamp);
        pressure_spike(
            &mut b,
            6,
            17,
            r(1),
            SpikeStyle::FloatFma,
            &[r(2), r(4), r(5)],
        );
        b.st_global(r(2), r(1));
        // Phase 2: diffusion update + second spike.
        independent_loads(&mut b, &[r(3), r(0)], &[r(6), r(7)], r(1));
        pressure_spike(
            &mut b,
            6,
            17,
            r(1),
            SpikeStyle::FloatFma,
            &[r(3), r(5), r(4)],
        );
        b.st_global(r(3), r(1));
        b.bra_loop(iters, TripCount::Fixed(3));
    }
    b.st_global(r(4), r(5));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("SRAD kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "SRAD",
        kernel: kernel(),
        grid_ctas: 180,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
