//! TPACF (Parboil): two-point angular correlation function.
//!
//! Character: histogram accumulation over galaxy-pair angular distances —
//! bin-search loops with uniform branches and a correlation spike per tile;
//! shared memory holds per-CTA histograms, bounding baseline occupancy
//! (Fig 8 group). Table I: 28 regs, `|Bs| = 20`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{dependent_loads, epilogue, pressure_spike, r, varied, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 28;
/// Table I base-set size.
pub const TABLE_BS: u16 = 20;

/// Build the synthetic TPACF kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("TPACF");
    b.threads_per_cta(256).shmem_per_cta(13_000).seed(0x79AC);
    // Persistent: r0 pair cursor, r1 histogram acc, r2 data base,
    // r3 random base, r4 bin scale, r5 bin count.
    for i in 0..6 {
        b.movi(r(i), 0x1200 + u64::from(i));
    }
    let tiles = b.here();
    {
        // Pair-distance loop with a bin search (uniform branches).
        let pairs = b.here();
        dependent_loads(&mut b, r(2), r(6), 1);
        b.shr(r(7), r(6), r(4));
        let found = b.new_label();
        b.bra_if(found, 450, Some(r(7)));
        b.iadd(r(1), r(7), r(1));
        b.place(found);
        b.ld_shared(r(6), r(3));
        b.iadd(r(1), r(6), r(1));
        b.bra_loop_pred(pairs, varied(4, 2), r(5));
        // Correlation spike: r6..r27 = 22; peak = 6 + 22 = 28.
        pressure_spike(
            &mut b,
            6,
            27,
            r(1),
            SpikeStyle::IntMad,
            &[r(2), r(3), r(4), r(5)],
        );
        b.st_shared(r(3), r(1));
        b.bra_loop(tiles, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(4));
    b.st_global(r(3), r(5));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("TPACF kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "TPACF",
        kernel: kernel(),
        grid_ctas: 120,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
