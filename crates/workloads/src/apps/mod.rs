//! One module per Table I application.

pub mod bfs;
pub mod cutcp;
pub mod dwt2d;
pub mod gaussian;
pub mod heartwall;
pub mod hotspot3d;
pub mod lavamd;
pub mod mergesort;
pub mod montecarlo;
pub mod mriq;
pub mod particlefilter;
pub mod radixsort;
pub mod sad;
pub mod spmv;
pub mod srad;
pub mod tpacf;
