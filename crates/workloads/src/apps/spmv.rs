//! SPMV (Parboil): sparse matrix–vector multiply (JDS format).
//!
//! Character: heavily memory-bound row loops (column indices, values, and
//! gathered vector entries), one partial-sum barrier per stripe (11 live
//! registers there), and a short unrolled-accumulation spike. Table I: 16
//! regs, `|Bs| = 12`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, pressure_spike, r, varied, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 16;
/// Table I base-set size.
pub const TABLE_BS: u16 = 12;

/// Build the synthetic SPMV kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("SPMV");
    b.threads_per_cta(192).seed(0x59317);
    // Persistent: r0 row cursor, r1 dot acc, r2 col base, r3 val base,
    // r4 vec base, r5 row length, r6 stripe base, r7 perm base, r8 scratch
    // seed, r9 output base.
    for i in 0..10 {
        b.movi(r(i), 0xF00 + u64::from(i));
    }
    let stripes = b.here();
    {
        // Gather loop: col index -> gathered vector entry -> accumulate
        // (kept at two loads so the low phase stays under |Bs| = 12).
        let nnz = b.here();
        b.ld_global(r(10), r(2)); // column index
        b.iadd(r(2), r(10), r(2));
        b.ld_global(r(11), r(10)); // gathered vector entry
        b.ffma(r(1), r(11), r(8), r(1));
        b.bra_loop_pred(nnz, varied(4, 3), r(5));
        // Stripe barrier: persistent 10 + r10 live across = 11.
        b.iadd(r(10), r(1), r(8));
        b.bar();
        b.st_shared(r(6), r(10));
        b.iadd(r(1), r(10), r(1));
        // Unrolled accumulation spike: r10..r15 = 6; peak = 10 + 6 = 16.
        pressure_spike(
            &mut b,
            10,
            15,
            r(1),
            SpikeStyle::IntMad,
            &[r(7), r(8), r(9)],
        );
        b.st_global(r(9), r(1));
        b.bra_loop(stripes, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(3));
    b.st_global(r(4), r(5));
    b.st_global(r(6), r(7));
    b.st_global(r(8), r(0));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("SPMV kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "SPMV",
        kernel: kernel(),
        grid_ctas: 210,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    use regmutex_compiler::{analyze, barrier_live_max};

    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }

    #[test]
    fn barrier_carries_exactly_11_live_registers() {
        let k = super::kernel();
        let lv = analyze(&k);
        assert_eq!(barrier_live_max(&k, &lv), 11);
    }
}
