//! HotSpot3D (Rodinia): 3-D thermal stencil.
//!
//! Character: a time-step loop with a CTA barrier between steps, shared-
//! memory tile exchange, and a pressure spike in the 7-point interpolation.
//! Table I: 32 regs, `|Bs| = 24`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{
    dependent_loads, epilogue, independent_loads, pressure_spike, r, shared_exchange, SpikeStyle,
};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 32;
/// Table I base-set size.
pub const TABLE_BS: u16 = 24;

/// Build the synthetic HotSpot3D kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("HotSpot3D");
    b.threads_per_cta(160).shmem_per_cta(6144).seed(0x4075);
    // r0 cell index, r1 temperature acc, r2 z-stride, r3..r7 conductances.
    for i in 0..8 {
        b.movi(r(i), 0x300 + u64::from(i));
    }
    let steps = b.here();
    {
        // Tile handoff from the previous step: the time-step barrier comes
        // first (live count there stays far below |Bs|), and the global
        // gathers *after* it stagger the warps before the pressure spike —
        // as the real kernel's halo loads do.
        shared_exchange(&mut b, r(0), r(1), r(8));
        b.iadd(r(1), r(8), r(1));
        independent_loads(&mut b, &[r(0), r(2)], &[r(8), r(9)], r(1));
        dependent_loads(&mut b, r(2), r(8), 2);
        // Interpolation spike: r8..r31 = 24 regs; peak = 8 + 24 = 32.
        pressure_spike(
            &mut b,
            8,
            31,
            r(1),
            SpikeStyle::FloatFma,
            &[r(3), r(4), r(5), r(6), r(7)],
        );
        b.st_shared(r(0), r(1));
        b.bra_loop(steps, TripCount::Fixed(4));
    }
    b.st_global(r(3), r(4));
    b.st_global(r(5), r(6));
    b.st_global(r(7), r(2));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("HotSpot3D kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "HotSpot3D",
        kernel: kernel(),
        grid_ctas: 270,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
