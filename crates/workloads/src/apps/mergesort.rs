//! MergeSort (CUDA SDK): shared-memory merge sort.
//!
//! Character: barrier-heavy merge steps over a shared-memory tile. The
//! barrier carries 11 live registers, so the `|Es| = 6` candidate (with
//! `|Bs| = 10 < 11`) violates deadlock rule 2 and the heuristic lands on
//! `|Es| = 4 / |Bs| = 12` — which, with the shared-memory tile already
//! bounding residency, buys *no occupancy* on the half-RF architecture. The
//! paper reports exactly this: MergeSort is the one application where
//! RegMutex adds a slight slowdown (instruction overhead, no gain).
//! Table I: 15 regs (16 rounded), `|Bs| = 12`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 15;
/// Table I base-set size.
pub const TABLE_BS: u16 = 12;

/// Build the synthetic MergeSort kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("MergeSort");
    b.threads_per_cta(192).shmem_per_cta(9_600).seed(0x3E56);
    // Persistent: r0 tile cursor, r1 key acc, r2 lo, r3 hi, r4 out base,
    // r5 rank, r6 stride.
    for i in 0..7 {
        b.movi(r(i), 0xD00 + u64::from(i));
    }
    let steps = b.here();
    {
        // Merge-path search: a run of comparisons and gathers per step (the
        // bulk of the dynamic instructions, so the injected acquire/release
        // overhead stays small, as the paper's "slight increase" implies).
        let search = b.here();
        b.ld_global(r(7), r(2));
        b.ld_shared(r(8), r(3));
        b.sel(r(9), r(7), r(8), r(5));
        b.iadd(r(1), r(9), r(1));
        b.bra_loop(search, TripCount::Fixed(6));
        // Load the pair of runs to merge.
        b.ld_shared(r(7), r(2));
        b.ld_shared(r(8), r(3));
        b.imin(r(9), r(7), r(8));
        b.imax(r(10), r(7), r(8));
        // Merge-step barrier: live = r0..r6 (7) + r7..r10 (4) = 11, pinned
        // by keeping all four comparison temps live across it.
        b.bar();
        b.st_shared(r(4), r(9));
        b.st_shared(r(5), r(10));
        b.iadd(r(1), r(7), r(1));
        b.iadd(r(1), r(8), r(1));
        // Rank-computation spike: r7..r14 = 8; peak = 7 + 8 = 15.
        pressure_spike(&mut b, 7, 14, r(1), SpikeStyle::IntMad, &[r(2), r(3), r(6)]);
        b.bra_loop(steps, TripCount::Fixed(5));
    }
    b.st_global(r(2), r(3));
    b.st_global(r(4), r(5));
    b.st_global(r(6), r(0));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("MergeSort kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "MergeSort",
        kernel: kernel(),
        grid_ctas: 210,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    use regmutex_compiler::{analyze, barrier_live_max};

    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }

    #[test]
    fn barrier_carries_exactly_11_live_registers() {
        let k = super::kernel();
        let lv = analyze(&k);
        assert_eq!(barrier_live_max(&k, &lv), 11);
    }
}
