//! HeartWall (Rodinia): ultrasound heart-wall tracking.
//!
//! Character: per-window template matching with mild divergence; shared
//! memory holds the template so occupancy on the baseline GPU is bounded by
//! shared memory, not registers (Fig 8 group). Table I: 28 regs,
//! `|Bs| = 20`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 28;
/// Table I base-set size.
pub const TABLE_BS: u16 = 20;

/// Build the synthetic HeartWall kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("HeartWall");
    b.threads_per_cta(256).shmem_per_cta(13_000).seed(0x4EA7);
    // r0 window cursor, r1 correlation acc, r2 template base, r3 frame
    // base, r4 epsilon, r5 scale.
    for i in 0..6 {
        b.movi(r(i), 0xB00 + u64::from(i));
    }
    let windows = b.here();
    {
        let points = b.here();
        b.ld_shared(r(6), r(2));
        b.ld_global(r(7), r(3));
        b.iadd(r(3), r(7), r(3));
        let skip = b.new_label();
        b.bra_div(skip, 250, Some(r(6)));
        b.ffma(r(1), r(6), r(7), r(1));
        b.place(skip);
        b.bra_loop(points, TripCount::Fixed(5));
        // Correlation spike: r6..r27 = 22; peak = 6 + 22 = 28.
        pressure_spike(
            &mut b,
            6,
            27,
            r(1),
            SpikeStyle::FloatFma,
            &[r(2), r(4), r(5)],
        );
        b.st_global(r(0), r(1));
        b.bra_loop(windows, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(3));
    b.st_global(r(4), r(5));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("HeartWall kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "HeartWall",
        kernel: kernel(),
        grid_ctas: 120,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
