//! MRI-Q (Parboil): magnetic-resonance image reconstruction (Q matrix).
//!
//! Character: a long, regular FMA loop over sample points with SFU
//! trigonometry (modelled as `fexp`/`fsqrt`), very little divergence, and
//! a spike in the unrolled phase accumulation. Table I: 21 regs (24
//! rounded), `|Bs| = 18`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 21;
/// Table I base-set size.
pub const TABLE_BS: u16 = 18;

/// Build the synthetic MRI-Q kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("MRI-Q");
    b.threads_per_cta(256).seed(0x3219);
    // r0 sample cursor, r1 Q-real acc, r2 Q-imag acc, r3..r5 k-space.
    for i in 0..6 {
        b.movi(r(i), 0x500 + u64::from(i));
    }
    let samples = b.here();
    {
        let inner = b.here();
        b.ld_global(r(6), r(0));
        b.iadd(r(0), r(6), r(0));
        b.fexp(r(7), r(6));
        b.ffma(r(1), r(7), r(3), r(1));
        b.fsqrt(r(8), r(7));
        b.ffma(r(2), r(8), r(4), r(2));
        b.bra_loop(inner, TripCount::Fixed(6));
        // Unrolled phase accumulation: r6..r20 = 15; peak = 6 + 15 = 21.
        pressure_spike(
            &mut b,
            6,
            20,
            r(1),
            SpikeStyle::FloatFma,
            &[r(3), r(4), r(5)],
        );
        b.bra_loop(samples, TripCount::Fixed(3));
    }
    b.st_global(r(3), r(2));
    b.st_global(r(4), r(5));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("MRI-Q kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "MRI-Q",
        kernel: kernel(),
        grid_ctas: 240,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
