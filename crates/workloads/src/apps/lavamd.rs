//! LavaMD (Rodinia): molecular-dynamics neighbor-box force computation.
//!
//! Character: per-box particle loops with shared-memory staging of neighbor
//! particles (large shared footprint bounds baseline occupancy — Fig 8
//! group) and a wide force-accumulation spike. Table I: 37 regs (40
//! rounded), `|Bs| = 28`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 37;
/// Table I base-set size.
pub const TABLE_BS: u16 = 28;

/// Build the synthetic LavaMD kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("LavaMD");
    b.threads_per_cta(96).shmem_per_cta(9_600).seed(0x1A3A);
    // r0 box cursor, r1 force acc, r2 particle base, r3..r6 position/charge.
    for i in 0..7 {
        b.movi(r(i), 0xC00 + u64::from(i));
    }
    let boxes = b.here();
    {
        let particles = b.here();
        b.ld_shared(r(7), r(2));
        b.ld_global(r(8), r(0));
        b.iadd(r(0), r(8), r(0));
        b.frcp(r(9), r(7));
        b.ffma(r(1), r(9), r(8), r(1));
        b.bra_loop(particles, TripCount::Fixed(4));
        // Force accumulation spike: r7..r36 = 30; peak = 7 + 30 = 37.
        pressure_spike(
            &mut b,
            7,
            36,
            r(1),
            SpikeStyle::FloatFma,
            &[r(3), r(4), r(5), r(6)],
        );
        b.st_global(r(2), r(1));
        b.bra_loop(boxes, TripCount::Fixed(3));
    }
    b.st_global(r(3), r(4));
    b.st_global(r(5), r(6));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("LavaMD kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "LavaMD",
        kernel: kernel(),
        grid_ctas: 90,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::RfInsensitive,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
