//! DWT2D (Rodinia): 2-D discrete wavelet transform.
//!
//! Character: very wide straight-line filter banks (row pass then column
//! pass) with the highest register demand of the suite; modest memory
//! traffic between passes. Table I: 44 regs, `|Bs| = 38`. The 13-warp CTA
//! geometry makes a single CTA consume over half the register file, so the
//! baseline runs one CTA per SM while RegMutex fits two (the paper's Fig 1b
//! shows DWT2D's deep utilization valleys between filter banks).

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{epilogue, independent_loads, pressure_spike, r, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 44;
/// Table I base-set size.
pub const TABLE_BS: u16 = 38;

/// Build the synthetic DWT2D kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("DWT2D");
    b.threads_per_cta(416).seed(0xD72D);
    // r0 row cursor, r1 acc, r2 col cursor, r3..r7 filter coefficients.
    for i in 0..8 {
        b.movi(r(i), 0x200 + u64::from(i));
    }
    let tiles = b.here();
    {
        // Load a tile strip.
        independent_loads(&mut b, &[r(0), r(2)], &[r(8), r(9)], r(1));
        // Row-pass then column-pass filter banks run back to back — most of
        // DWT2D's dynamic instructions hold the extended set, which is what
        // limits its RegMutex gains in the paper despite the doubled
        // occupancy.
        pressure_spike(
            &mut b,
            8,
            43,
            r(1),
            SpikeStyle::FloatFma,
            &[r(3), r(4), r(5), r(6), r(7)],
        );
        b.st_global(r(0), r(1));
        pressure_spike(
            &mut b,
            8,
            43,
            r(1),
            SpikeStyle::FloatFma,
            &[r(4), r(5), r(6), r(7), r(3)],
        );
        b.st_global(r(2), r(1));
        b.bra_loop(tiles, TripCount::Fixed(3));
    }
    b.st_global(r(3), r(4));
    b.st_global(r(5), r(6));
    b.st_global(r(7), r(0));
    epilogue(&mut b, r(2), r(1));
    b.build().expect("DWT2D kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "DWT2D",
        kernel: kernel(),
        grid_ctas: 90,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
