//! BFS (Rodinia): level-synchronous breadth-first search.
//!
//! Character: memory-bound frontier expansion with divergent visited checks
//! and data-dependent neighbor counts; register pressure spikes when a
//! frontier node's neighborhood is expanded. Table I: 21 regs (24 rounded),
//! `|Bs| = 18`.

use regmutex_isa::{Kernel, KernelBuilder, TripCount};

use crate::gen::{dependent_loads, epilogue, pressure_spike, r, varied, SpikeStyle};
use crate::{Group, Workload};

/// Table I registers per thread.
pub const REGS: u16 = 21;
/// Table I base-set size.
pub const TABLE_BS: u16 = 18;

/// Build the synthetic BFS kernel.
pub fn kernel() -> Kernel {
    let mut b = KernelBuilder::new("BFS");
    b.threads_per_cta(256).seed(0xBF5);
    // Persistent state: r0 node cursor, r1 frontier accumulator, r2 level,
    // r3 visited base, r4 queue base, r5 scratch seed.
    for i in 0..6 {
        b.movi(r(i), 0x40 + u64::from(i));
    }
    let levels = b.here();
    {
        // Neighbor scan: data-dependent length, divergent visited check.
        let scan = b.here();
        b.ld_global(r(6), r(0)); // edge list
        b.iadd(r(0), r(6), r(0));
        let skip = b.new_label();
        b.bra_div(skip, 350, Some(r(6))); // already-visited lanes skip
        b.ld_global(r(6), r(3));
        b.iadd(r(1), r(6), r(1));
        b.place(skip);
        b.bra_loop_pred(scan, varied(4, 4), r(6));
        // Frontier update: the high-pressure expansion (r6..r20 = 15 regs;
        // peak = 6 persistent + 15 = 21).
        pressure_spike(
            &mut b,
            6,
            20,
            r(1),
            SpikeStyle::IntMad,
            &[r(2), r(3), r(4), r(5)],
        );
        // Publish the new frontier.
        b.st_global(r(4), r(1));
        dependent_loads(&mut b, r(4), r(6), 1);
        b.bra_loop(levels, TripCount::Fixed(4));
    }
    b.st_global(r(3), r(2));
    b.st_global(r(4), r(5));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("BFS kernel is structurally valid")
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "BFS",
        kernel: kernel(),
        grid_ctas: 240,
        table_regs: REGS,
        table_bs: TABLE_BS,
        group: Group::OccupancyLimited,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_compliance() {
        crate::test_support::check(&super::workload());
    }
}
