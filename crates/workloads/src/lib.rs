//! # regmutex-workloads
//!
//! Synthetic stand-ins for the 16 Table I benchmark kernels (Rodinia,
//! Parboil, CUDA SDK). We cannot run the real CUDA binaries (no GPU, no
//! PTXPlus), so each generator reproduces the properties RegMutex interacts
//! with: the application's architected register count (Table I), a
//! register-pressure profile with the Fig 1 shape (long low-pressure phases,
//! short spikes), its memory/divergence/barrier character, and a CTA
//! geometry under which the §III-A2 heuristic selects exactly the Table I
//! `|Bs|` on the architecture where the paper evaluates that application
//! (the GTX480 baseline for the occupancy-limited Fig 7 group, the
//! half-register-file variant for the Fig 8 group).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod gen;
pub mod suite;

pub use gen::{
    dependent_loads, epilogue, independent_loads, pressure_spike, r, shared_exchange, varied,
    SpikeStyle,
};

use regmutex_isa::Kernel;
use regmutex_sim::{GpuConfig, LaunchConfig};

/// Which experiment group an application belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Fig 7: occupancy limited by register demand on the baseline GPU.
    OccupancyLimited,
    /// Fig 8: registers do not limit occupancy on the baseline GPU; these
    /// applications are evaluated on the half-register-file architecture.
    RfInsensitive,
}

/// One benchmark application.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Application name (matching the paper's Table I).
    pub name: &'static str,
    /// The synthesized kernel.
    pub kernel: Kernel,
    /// Whole-device grid size used by the experiments.
    pub grid_ctas: u32,
    /// Table I registers per thread (unrounded).
    pub table_regs: u16,
    /// Table I base-set size the heuristic must reproduce.
    pub table_bs: u16,
    /// Experiment group.
    pub group: Group,
}

impl Workload {
    /// The launch configuration for this application's experiments.
    pub fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid_ctas)
    }

    /// The architecture on which Table I's `|Bs|` applies: the GTX480
    /// baseline for the Fig 7 group, the half-RF variant for the Fig 8
    /// group.
    pub fn table_config(&self) -> GpuConfig {
        match self.group {
            Group::OccupancyLimited => GpuConfig::gtx480(),
            Group::RfInsensitive => GpuConfig::gtx480_half_rf(),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use regmutex_compiler::{compile, CompileOptions};
    use regmutex_sim::{occupancy, GpuConfig, KernelResources, Limiter};

    use crate::{Group, Workload};

    /// Table-compliance oracle shared by every application's tests:
    /// * the kernel validates and declares exactly the Table I register
    ///   count, with a real pressure spike above `|Bs|`;
    /// * on the group's home architecture, the §III-A2 heuristic picks
    ///   exactly the Table I `|Bs|` and injects acquire/release pairs;
    /// * group membership matches the occupancy limiter on the baseline
    ///   GPU (Fig 7 = register-limited, Fig 8 = not).
    pub fn check(w: &Workload) {
        w.kernel
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(w.kernel.regs_per_thread, w.table_regs, "{}", w.name);

        let lv = regmutex_compiler::analyze(&w.kernel);
        let peak = lv.max_pressure() as u16;
        assert!(
            peak > w.table_bs && peak <= w.table_regs,
            "{}: pressure peak {peak} outside ({}, {}]",
            w.name,
            w.table_bs,
            w.table_regs
        );

        let cfg = w.table_config();
        let compiled = compile(&w.kernel, &cfg, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let plan = compiled.plan.unwrap_or_else(|| {
            panic!(
                "{}: RegMutex not applied; rejects: {:?}",
                w.name, compiled.diagnostics.rejected
            )
        });
        assert_eq!(plan.bs, w.table_bs, "{}: plan {plan:?}", w.name);
        assert_eq!(
            plan.es,
            cfg.round_regs(w.table_regs) as u16 - w.table_bs,
            "{}",
            w.name
        );
        assert!(compiled.diagnostics.acquires >= 1, "{}", w.name);
        assert_eq!(
            compiled.diagnostics.acquires, compiled.diagnostics.releases,
            "{}",
            w.name
        );

        let baseline = occupancy::theoretical(
            &GpuConfig::gtx480(),
            KernelResources::new(
                w.kernel.regs_per_thread,
                w.kernel.shmem_per_cta,
                w.kernel.threads_per_cta,
            ),
        );
        match w.group {
            Group::OccupancyLimited => {
                assert_eq!(baseline.limiter, Limiter::Registers, "{}", w.name)
            }
            Group::RfInsensitive => {
                assert_ne!(baseline.limiter, Limiter::Registers, "{}", w.name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_accessors() {
        let w = suite::by_name("BFS").expect("BFS exists");
        assert_eq!(w.launch().grid_ctas, w.grid_ctas);
        assert_eq!(w.group, Group::OccupancyLimited);
        assert_eq!(w.table_config().regs_per_sm, 32_768);
        let g = suite::by_name("Gaussian").expect("Gaussian exists");
        assert_eq!(g.table_config().regs_per_sm, 16_384);
    }
}
