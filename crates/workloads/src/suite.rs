//! Registry over the 16 Table I applications.

use crate::apps;
use crate::{Group, Workload};

/// All 16 applications in Table I order.
pub fn all() -> Vec<Workload> {
    vec![
        apps::bfs::workload(),
        apps::cutcp::workload(),
        apps::dwt2d::workload(),
        apps::hotspot3d::workload(),
        apps::mriq::workload(),
        apps::particlefilter::workload(),
        apps::radixsort::workload(),
        apps::sad::workload(),
        apps::gaussian::workload(),
        apps::heartwall::workload(),
        apps::lavamd::workload(),
        apps::mergesort::workload(),
        apps::montecarlo::workload(),
        apps::spmv::workload(),
        apps::srad::workload(),
        apps::tpacf::workload(),
    ]
}

/// The 8 occupancy-limited applications of Fig 7 (evaluated on the GTX480
/// baseline).
pub fn occupancy_limited() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.group == Group::OccupancyLimited)
        .collect()
}

/// The 8 register-insensitive applications of Fig 8 (evaluated on the
/// half-register-file architecture).
pub fn rf_insensitive() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.group == Group::RfInsensitive)
        .collect()
}

/// Look an application up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

/// The 16 application names in Table I order, built once. Request
/// validation goes through this: constructing every workload (16 full
/// kernels) per lookup is fine for a bench harness but not on a serving
/// hot path.
pub fn names() -> &'static [&'static str] {
    static NAMES: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    NAMES.get_or_init(|| all().iter().map(|w| w.name).collect())
}

/// Whether a (case-insensitive) name is one of the 16 applications,
/// without constructing any of them.
pub fn is_app(name: &str) -> bool {
    names().iter().any(|n| n.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_apps_eight_per_group() {
        assert_eq!(all().len(), 16);
        assert_eq!(occupancy_limited().len(), 8);
        assert_eq!(rf_insensitive().len(), 8);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("bfs").is_some());
        assert!(by_name("DWT2D").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn fig7_group_matches_paper_list() {
        let names: Vec<&str> = occupancy_limited().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "BFS",
                "CUTCP",
                "DWT2D",
                "HotSpot3D",
                "MRI-Q",
                "ParticleFilter",
                "RadixSort",
                "SAD"
            ]
        );
    }

    #[test]
    fn fig8_group_matches_paper_list() {
        let names: Vec<&str> = rf_insensitive().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "Gaussian",
                "HeartWall",
                "LavaMD",
                "MergeSort",
                "MonteCarlo",
                "SPMV",
                "SRAD",
                "TPACF"
            ]
        );
    }

    #[test]
    fn every_app_trace_has_the_fig1_shape() {
        // Each application's dynamic trace must justify its allocation
        // (peak near 100%) while leaving it mostly idle (fractional mean).
        for w in all() {
            let t = regmutex_compiler::live_trace(&w.kernel, 50_000);
            assert!(!t.truncated, "{}: runaway trace", w.name);
            let p = t.percentages();
            let peak = p.iter().cloned().fold(0.0f64, f64::max);
            assert!(peak > 90.0, "{}: peak only {peak:.0}%", w.name);
            let mean = t.mean_utilization();
            assert!(
                (15.0..85.0).contains(&mean),
                "{}: mean {mean:.0}% is not fractional",
                w.name
            );
        }
    }

    #[test]
    fn every_app_touches_memory() {
        use regmutex_isa::{Op, Space};
        for w in all() {
            let loads = w
                .kernel
                .count_ops(|o| matches!(o, Op::Ld(Space::Global) | Op::Ld(Space::Shared)));
            assert!(loads > 0, "{}: no memory accesses", w.name);
            let stores = w.kernel.count_ops(|o| matches!(o, Op::St(_)));
            assert!(stores > 0, "{}: no observable stores", w.name);
        }
    }

    #[test]
    fn barrier_apps_are_the_expected_ones() {
        use regmutex_isa::Op;
        let with_barriers: Vec<&str> = all()
            .iter()
            .filter(|w| w.kernel.count_ops(|o| matches!(o, Op::Bar)) > 0)
            .map(|w| w.name)
            .collect();
        assert_eq!(
            with_barriers,
            vec!["HotSpot3D", "RadixSort", "MergeSort", "MonteCarlo", "SPMV"]
        );
    }

    #[test]
    fn every_kernel_is_valid_and_matches_table_register_count() {
        for w in all() {
            assert!(w.kernel.validate().is_ok(), "{} invalid", w.name);
            assert_eq!(w.kernel.regs_per_thread, w.table_regs, "{}", w.name);
            assert!(w.grid_ctas > 0);
        }
    }
}
