//! A hashed timer wheel for connection deadlines.
//!
//! The blocking server leaned on `SO_RCVTIMEO`, which restarts on every
//! byte — a slow-drip client could hold a thread forever by sending one
//! header byte per second. The event loop instead arms one *absolute*
//! deadline per connection on this wheel: 256 slots of coarse
//! (default 50 ms) ticks, each holding `(conn, generation, tick)`
//! entries.
//!
//! Cancellation is lazy: the loop never removes entries. An entry fires
//! only if the connection still exists, its generation matches (the slab
//! slot was not reused), and its tick equals the connection's *current*
//! armed deadline — re-arming simply abandons the old entry. Entries
//! hashed into a slot but belonging to a future lap are re-inserted on
//! the next lap.

use std::time::Duration;

const WHEEL_SLOTS: usize = 256;

/// An armed deadline: slab index, slab generation, absolute tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    /// Slab index of the connection.
    pub conn: usize,
    /// Slab generation at arm time (stale entries are skipped).
    pub generation: u64,
    /// Absolute tick the deadline expires at.
    pub tick: u64,
}

/// The wheel itself. Single-owner (the event loop thread).
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    granularity: Duration,
    /// First tick not yet processed by [`TimerWheel::advance`].
    cursor: u64,
    /// Number of live (possibly stale) entries, to let the loop pick a
    /// cheap epoll timeout when nothing is armed.
    len: usize,
}

impl TimerWheel {
    /// A wheel with the given tick granularity.
    pub fn new(granularity: Duration) -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            granularity,
            cursor: 0,
            len: 0,
        }
    }

    /// Tick granularity.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }

    /// Convert an elapsed duration (since loop start) to an absolute tick,
    /// rounding up so a deadline never fires early.
    pub fn tick_after(&self, elapsed: Duration, timeout: Duration) -> u64 {
        let g = self.granularity.as_nanos().max(1);
        let end = elapsed.as_nanos() + timeout.as_nanos();
        (end.div_ceil(g)) as u64
    }

    /// Current tick for an elapsed duration (rounding down).
    pub fn now_tick(&self, elapsed: Duration) -> u64 {
        let g = self.granularity.as_nanos().max(1);
        (elapsed.as_nanos() / g) as u64
    }

    /// Arm an entry. Ticks in the past fire on the next [`advance`].
    pub fn schedule(&mut self, entry: TimerEntry) {
        let tick = entry.tick.max(self.cursor);
        let slot = (tick as usize) % WHEEL_SLOTS;
        self.slots[slot].push(TimerEntry { tick, ..entry });
        self.len += 1;
    }

    /// Whether any entries (live or stale) are armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Collect every entry with `tick <= now_tick`. Entries in visited
    /// slots that belong to later laps are retained.
    pub fn advance(&mut self, now_tick: u64) -> Vec<TimerEntry> {
        let mut fired = Vec::new();
        if now_tick < self.cursor {
            return fired;
        }
        // Visit at most one full lap; slots repeat after that.
        let first = self.cursor;
        let last = now_tick.min(first + WHEEL_SLOTS as u64 - 1);
        for tick in first..=last {
            let slot = (tick as usize) % WHEEL_SLOTS;
            let entries = std::mem::take(&mut self.slots[slot]);
            for e in entries {
                if e.tick <= now_tick {
                    self.len -= 1;
                    fired.push(e);
                } else {
                    self.slots[slot].push(e);
                }
            }
        }
        self.cursor = now_tick + 1;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel {
        TimerWheel::new(Duration::from_millis(50))
    }

    fn entry(conn: usize, tick: u64) -> TimerEntry {
        TimerEntry {
            conn,
            generation: 1,
            tick,
        }
    }

    #[test]
    fn fires_at_and_after_deadline_only() {
        let mut w = wheel();
        w.schedule(entry(1, 3));
        w.schedule(entry(2, 5));
        assert!(w.advance(2).is_empty());
        let fired = w.advance(3);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 1);
        let fired = w.advance(10);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 2);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_entries_survive_slot_collisions() {
        let mut w = wheel();
        // Same slot (tick % 256), different laps.
        w.schedule(entry(1, 10));
        w.schedule(entry(2, 10 + WHEEL_SLOTS as u64));
        let fired = w.advance(20);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 1);
        let fired = w.advance(10 + WHEEL_SLOTS as u64);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].conn, 2);
    }

    #[test]
    fn past_ticks_fire_immediately_on_next_advance() {
        let mut w = wheel();
        assert!(w.advance(100).is_empty());
        w.schedule(entry(1, 4)); // already in the past
        let fired = w.advance(101);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn jump_beyond_one_lap_still_fires_everything() {
        let mut w = wheel();
        w.schedule(entry(1, 1));
        w.schedule(entry(2, WHEEL_SLOTS as u64 * 3));
        let fired = w.advance(WHEEL_SLOTS as u64 * 4);
        // One advance covers a single lap; the retained far entry fires
        // on the following advance.
        let total = fired.len() + w.advance(WHEEL_SLOTS as u64 * 4).len();
        assert_eq!(total, 2);
        assert!(w.is_empty());
    }

    #[test]
    fn tick_conversion_rounds_up() {
        let w = wheel();
        assert_eq!(
            w.tick_after(Duration::from_millis(0), Duration::from_millis(1)),
            1
        );
        assert_eq!(
            w.tick_after(Duration::from_millis(49), Duration::from_millis(51)),
            2
        );
        assert_eq!(w.now_tick(Duration::from_millis(49)), 0);
        assert_eq!(w.now_tick(Duration::from_millis(50)), 1);
    }
}
