//! A bounded MPMC job queue on `Mutex` + `Condvar`.
//!
//! The serving path needs exactly two properties from its queue:
//!
//! * **Backpressure is explicit.** [`BoundedQueue::try_push`] never
//!   blocks; a full queue returns the job to the caller, which answers
//!   the HTTP request with `429 Too Many Requests` + `Retry-After`
//!   instead of letting latency grow without bound.
//! * **Shutdown drains.** [`BoundedQueue::close`] stops admissions while
//!   consumers keep draining what was admitted; [`BoundedQueue::pop`]
//!   returns `None` only once the queue is both closed and empty, so no
//!   accepted job is ever dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue is closed (shutting down); the job is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity MPMC queue with explicit close semantics.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    takers: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking enqueue.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.takers.notify_one();
        Ok(())
    }

    /// Enqueue ignoring the capacity bound; fails only when closed.
    ///
    /// This is for *continuations of already-admitted work* (the next
    /// point of a sweep whose baseline was admitted): backpressure was
    /// applied at admission, and a drain promises admitted work will
    /// finish, so its follow-on jobs must not be bounced by `Full`. At
    /// most one overflow job exists per in-flight sweep, so the overshoot
    /// is bounded by the connection cap.
    pub fn push_overflow(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        s.items.push_back(item);
        drop(s);
        self.takers.notify_one();
        Ok(())
    }

    /// Blocking dequeue. `None` means the queue is closed **and** drained
    /// — the consumer should exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.takers.wait(s).unwrap();
        }
    }

    /// Stop admitting; wake all consumers so they can drain and exit.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.takers.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_backpressure() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn push_overflow_ignores_capacity_but_not_close() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert!(q.push_overflow(2).is_ok(), "overflow push beats Full");
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.push_overflow(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1), "admitted items drain after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(9).unwrap();
        assert_eq!(t.join().unwrap(), Some(9));
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(8));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let v = p * 1000 + i;
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..50u64).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
