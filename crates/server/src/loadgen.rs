//! Closed-loop load generator for the simulation service.
//!
//! `threads` clients each issue `requests` back-to-back `POST /v1/run`
//! requests, sampling (workload, technique) pairs from the server's own
//! `/v1/workloads` registry with a seeded xorshift64* generator — the same
//! seed reproduces the same request stream. Being closed-loop, offered
//! load adapts to service rate; backpressure shows up as 429 counts, not
//! as client-side queue growth.
//!
//! Latency percentiles are exact (computed from the sorted client-side
//! sample set), unlike the server's bucketed histogram.
//!
//! Each thread drives one [`HttpClient`]: with keep-alive (the default)
//! all of a thread's requests share one connection unless the server
//! closes it; with `keep_alive: false` every request pays a fresh TCP
//! handshake — the pre-event-loop behaviour, kept measurable for
//! before/after comparison. The report carries per-connection request
//! counts so reuse is visible, not assumed. With `pipeline > 1` each
//! thread writes that many requests per round trip and reads the
//! responses back in order — the syscall-amortised mode that measures
//! the server's event loop rather than the scheduler's context-switch
//! rate.

use std::time::{Duration, Instant};

use crate::http::{client_request, HttpClient};
use crate::json::{self, Json};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent closed-loop client threads.
    pub threads: usize,
    /// Requests issued per thread.
    pub requests: usize,
    /// RNG seed for workload sampling.
    pub seed: u64,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Restrict sampling to these workloads (empty = the full registry).
    pub apps: Vec<String>,
    /// Retries per request on 429 before giving up (honoring the server's
    /// `Retry-After` each time). 0 restores the fire-and-forget behaviour.
    pub max_retries_429: usize,
    /// Cap on a single `Retry-After` wait, so a hostile or confused server
    /// can't stall a client thread arbitrarily long.
    pub retry_after_cap: Duration,
    /// Reuse connections across requests (HTTP/1.1 keep-alive). `false`
    /// restores one-connection-per-request for comparison runs.
    pub keep_alive: bool,
    /// Requests pipelined per round trip (1 = classic request/response).
    /// Values above 1 batch that many requests into one write and read
    /// the responses back in order, amortising syscalls and context
    /// switches; the server answers at most 8 per read, so deeper
    /// windows only queue client-side. Pipelined batches skip 429
    /// retries (a batch is not safely re-issuable piecemeal), and each
    /// request's latency sample is its batch's full round trip.
    pub pipeline: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8077".to_string(),
            threads: 4,
            requests: 50,
            seed: 0x5eed_2024,
            timeout: Duration::from_secs(120),
            apps: Vec::new(),
            max_retries_429: 3,
            retry_after_cap: Duration::from_secs(2),
            keep_alive: true,
            pipeline: 1,
        }
    }
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests issued (threads × requests).
    pub total: usize,
    /// 200 responses.
    pub ok: usize,
    /// 200 responses served from the result cache.
    pub cached: usize,
    /// Requests that still saw 429 after every retry (gave up).
    pub rejected: usize,
    /// 429 responses that were retried after honoring `Retry-After`
    /// (attempt count, not request count; one request can retry several
    /// times).
    pub retried_429: usize,
    /// Any other status or transport error.
    pub failed: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-request latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Connections opened across all client threads.
    pub connections: usize,
    /// Requests completed per connection, across all threads.
    pub conn_requests: Vec<u64>,
}

impl LoadgenReport {
    /// Exact percentile (nearest-rank on the sorted samples), in µs.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((p / 100.0) * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[idx.min(self.latencies_us.len() - 1)]
    }

    /// Completed requests per second (every response counts — 429s are
    /// responses, not drops).
    pub fn rps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        (self.ok + self.rejected + self.failed) as f64 / s
    }

    /// Cache hit rate over successful runs.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.ok == 0 {
            return 0.0;
        }
        self.cached as f64 / self.ok as f64
    }

    /// Whether every issued request got *some* response (nothing dropped).
    pub fn nothing_dropped(&self) -> bool {
        self.ok + self.rejected + self.failed == self.total
    }

    /// Successfully completed requests per second — the throughput that
    /// actually did work, as opposed to [`LoadgenReport::rps`]'s raw
    /// response rate. Retried-then-succeeded requests count once.
    pub fn goodput(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        self.ok as f64 / s
    }

    /// Mean requests per connection (1.0 without keep-alive).
    pub fn requests_per_conn(&self) -> f64 {
        if self.conn_requests.is_empty() {
            return 0.0;
        }
        self.conn_requests.iter().sum::<u64>() as f64 / self.conn_requests.len() as f64
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        format!(
            "requests      {}\n\
             ok            {}\n\
             cached        {} ({:.1}% hit rate)\n\
             retried 429   {}\n\
             rejected 429  {}\n\
             failed        {}\n\
             connections   {} ({:.1} req/conn)\n\
             elapsed       {:.2} s\n\
             throughput    {:.1} req/s\n\
             goodput       {:.1} ok/s\n\
             latency p50   {:.3} ms\n\
             latency p95   {:.3} ms\n\
             latency p99   {:.3} ms",
            self.total,
            self.ok,
            self.cached,
            100.0 * self.cache_hit_rate(),
            self.retried_429,
            self.rejected,
            self.failed,
            self.connections,
            self.requests_per_conn(),
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.goodput(),
            self.percentile_us(50.0) as f64 / 1e3,
            self.percentile_us(95.0) as f64 / 1e3,
            self.percentile_us(99.0) as f64 / 1e3,
        )
    }
}

/// xorshift64* — tiny, seedable, good enough for workload sampling.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

const TECHNIQUES: [&str; 2] = ["baseline", "regmutex"];

/// Fetch the workload names the server offers.
fn fetch_workloads(cfg: &LoadgenConfig) -> Result<Vec<String>, String> {
    let resp = client_request(&cfg.addr, "GET", "/v1/workloads", None, cfg.timeout)
        .map_err(|e| format!("GET /v1/workloads: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /v1/workloads: status {}", resp.status));
    }
    let text = core::str::from_utf8(&resp.body).map_err(|e| e.to_string())?;
    let parsed = json::parse(text).map_err(|e| e.to_string())?;
    let arr = parsed
        .as_arr()
        .ok_or_else(|| "workload registry is not an array".to_string())?;
    let names: Vec<String> = arr
        .iter()
        .filter_map(|w| w.get("name").and_then(Json::as_str))
        .map(str::to_string)
        .collect();
    if names.is_empty() {
        return Err("workload registry is empty".to_string());
    }
    Ok(names)
}

/// Run the closed loop and aggregate every thread's tallies.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let mut names = fetch_workloads(cfg)?;
    if !cfg.apps.is_empty() {
        names.retain(|n| cfg.apps.iter().any(|a| a == n));
        if names.is_empty() {
            return Err("no requested app exists in the server registry".to_string());
        }
    }
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..cfg.threads.max(1) {
        let cfg = cfg.clone();
        let names = names.clone();
        handles.push(std::thread::spawn(move || {
            worker(
                &cfg,
                &names,
                cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
        }));
    }
    let mut report = LoadgenReport {
        total: cfg.threads.max(1) * cfg.requests,
        ..Default::default()
    };
    for h in handles {
        let part = h
            .join()
            .map_err(|_| "loadgen thread panicked".to_string())?;
        report.ok += part.ok;
        report.cached += part.cached;
        report.rejected += part.rejected;
        report.retried_429 += part.retried_429;
        report.failed += part.failed;
        report.latencies_us.extend(part.latencies_us);
        report.connections += part.connections;
        report.conn_requests.extend(part.conn_requests);
    }
    report.elapsed = started.elapsed();
    report.latencies_us.sort_unstable();
    Ok(report)
}

/// The wait a 429 asked for: its `Retry-After` seconds, capped. A missing
/// or unparsable header falls back to the cap (the server always sends the
/// header; a proxy might strip it).
fn retry_after_wait(resp: &crate::http::ClientResponse, cap: Duration) -> Duration {
    resp.header("retry-after")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(cap, Duration::from_secs)
        .min(cap)
}

/// Tally one response into the report (no-retry classification).
fn tally(resp: &crate::http::ClientResponse, part: &mut LoadgenReport) {
    match resp.status {
        200 => {
            part.ok += 1;
            // The server encodes canonically, so a substring scan is
            // exact here and much cheaper than a JSON parse.
            if resp
                .body
                .windows(b"\"cached\":true".len())
                .any(|w| w == b"\"cached\":true")
            {
                part.cached += 1;
            }
        }
        429 => part.rejected += 1,
        _ => part.failed += 1,
    }
}

fn worker(cfg: &LoadgenConfig, names: &[String], seed: u64) -> LoadgenReport {
    let mut rng = Rng::new(seed);
    let mut part = LoadgenReport::default();
    let mut client = HttpClient::new(cfg.addr.clone(), cfg.timeout, cfg.keep_alive);
    // Request bodies are pure functions of (app, technique): precompute
    // every combination once so the hot loop does no JSON encoding.
    let bodies: Vec<Vec<u8>> = names
        .iter()
        .flat_map(|app| {
            TECHNIQUES.iter().map(move |technique| {
                Json::Obj(vec![
                    ("app".into(), Json::Str(app.clone())),
                    ("technique".into(), Json::Str((*technique).into())),
                ])
                .encode()
                .into_bytes()
            })
        })
        .collect();
    let pipeline = cfg.pipeline.max(1);
    if pipeline > 1 {
        // Pipelined mode: sample a full window up front (same two rng
        // draws per request, so a seed reproduces the same stream at any
        // depth), write it as one batch, read the responses in order.
        let mut remaining = cfg.requests;
        while remaining > 0 {
            let n = pipeline.min(remaining);
            remaining -= n;
            let idxs: Vec<usize> = (0..n)
                .map(|_| {
                    let app_idx = (rng.next() % names.len() as u64) as usize;
                    let tech_idx = (rng.next() % TECHNIQUES.len() as u64) as usize;
                    app_idx * TECHNIQUES.len() + tech_idx
                })
                .collect();
            let batch: Vec<&[u8]> = idxs.iter().map(|&i| bodies[i].as_slice()).collect();
            let sent = Instant::now();
            let outcome = client.request_batch("POST", "/v1/run", &batch);
            let us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            match outcome {
                Ok(resps) => {
                    for resp in &resps {
                        part.latencies_us.push(us);
                        tally(resp, &mut part);
                    }
                }
                Err(_) => {
                    for _ in 0..n {
                        part.latencies_us.push(us);
                        part.failed += 1;
                    }
                }
            }
        }
    } else {
        for _ in 0..cfg.requests {
            // Same two rng draws (app, then technique) as the pre-pool
            // code, so a seed reproduces the same request stream.
            let app_idx = (rng.next() % names.len() as u64) as usize;
            let tech_idx = (rng.next() % TECHNIQUES.len() as u64) as usize;
            let body = &bodies[app_idx * TECHNIQUES.len() + tech_idx];
            // One logical request: up to 1 + max_retries_429 attempts,
            // backing off by the server's Retry-After between them. The
            // latency sample is end-to-end (waits included) — the latency
            // a polite client actually experiences under backpressure.
            let sent = Instant::now();
            let mut attempts_left = cfg.max_retries_429;
            let outcome = loop {
                match client.request("POST", "/v1/run", Some(body)) {
                    Ok(resp) if resp.status == 429 && attempts_left > 0 => {
                        attempts_left -= 1;
                        part.retried_429 += 1;
                        std::thread::sleep(retry_after_wait(&resp, cfg.retry_after_cap));
                    }
                    other => break other,
                }
            };
            part.latencies_us
                .push(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            match outcome {
                Ok(resp) => tally(&resp, &mut part),
                Err(_) => part.failed += 1,
            }
        }
    }
    part.connections = client.connections_opened as usize;
    part.conn_requests = client.conn_request_counts();
    part
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..32 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn percentiles_are_exact_on_sorted_samples() {
        let report = LoadgenReport {
            total: 100,
            ok: 100,
            latencies_us: (1..=100).collect(),
            elapsed: Duration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(report.percentile_us(50.0), 51);
        assert_eq!(report.percentile_us(99.0), 99);
        assert_eq!(report.percentile_us(100.0), 100);
        assert!((report.rps() - 50.0).abs() < 1e-9);
        assert!(report.nothing_dropped());
    }

    #[test]
    fn empty_report_is_safe() {
        let r = LoadgenReport::default();
        assert_eq!(r.percentile_us(99.0), 0);
        assert_eq!(r.rps(), 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
    }

    #[test]
    fn render_mentions_every_tally() {
        let r = LoadgenReport {
            total: 10,
            ok: 7,
            cached: 4,
            rejected: 2,
            retried_429: 5,
            failed: 1,
            elapsed: Duration::from_secs(1),
            latencies_us: vec![100, 200, 300],
            connections: 2,
            conn_requests: vec![6, 4],
        };
        let text = r.render();
        assert!(text.contains("rejected 429  2"), "{text}");
        assert!(text.contains("retried 429   5"), "{text}");
        assert!(text.contains("goodput       7.0 ok/s"), "{text}");
        assert!(text.contains("hit rate"), "{text}");
        assert!(text.contains("connections   2 (5.0 req/conn)"), "{text}");
        assert!((r.requests_per_conn() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn retry_after_wait_parses_and_caps() {
        use crate::http::ClientResponse;
        let resp = |headers: Vec<(String, String)>| ClientResponse {
            status: 429,
            headers,
            body: Vec::new(),
        };
        let cap = Duration::from_secs(2);
        let with = resp(vec![("retry-after".into(), "1".into())]);
        assert_eq!(retry_after_wait(&with, cap), Duration::from_secs(1));
        let over = resp(vec![("retry-after".into(), "60".into())]);
        assert_eq!(retry_after_wait(&over, cap), cap);
        let missing = resp(vec![]);
        assert_eq!(retry_after_wait(&missing, cap), cap);
        let garbage = resp(vec![("retry-after".into(), "soon".into())]);
        assert_eq!(retry_after_wait(&garbage, cap), cap);
    }
}
