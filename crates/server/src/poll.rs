//! Raw epoll + eventfd wrappers on `std` alone — no `libc` crate.
//!
//! The event loop needs exactly four kernel facilities: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, and an `eventfd` the simulation workers (and
//! the signal handler) can write to wake the loop. All four are declared
//! here directly against the platform libc, the same way `signal.rs`
//! declares `signal(2)` — the crate stays dependency-free and the unsafe
//! surface stays in one audited module.
//!
//! Sockets are made nonblocking with `TcpStream::set_nonblocking`, so no
//! `fcntl` declaration is needed. Level-triggered epoll is used
//! throughout: the loop deregisters `EPOLLIN` interest instead of leaving
//! readable bytes unread (which would spin under level triggering).

use std::io;
use std::os::fd::RawFd;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

/// One ready event out of `epoll_wait`. On x86-64 the kernel ABI packs
/// this struct; other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An all-zero event, for buffer initialisation.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }

    /// The ready-event bitmask.
    pub fn events(&self) -> u32 {
        let ev = *self;
        ev.events
    }

    /// The `u64` token registered with the fd.
    pub fn token(&self) -> u64 {
        let ev = *self;
        ev.data
    }
}

#[allow(unsafe_code)]
mod sys {
    use super::EpollEvent;

    unsafe extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance. Owns the fd; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    #[allow(unsafe_code)]
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { sys::epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    #[allow(unsafe_code)]
    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        check(unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask of an already-registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`.
    #[allow(unsafe_code)]
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // Linux < 2.6.9 required a non-null event for DEL; passing one is
        // harmless everywhere and keeps the call portable.
        let mut ev = EpollEvent { events: 0, data: 0 };
        check(unsafe { sys::epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Wait up to `timeout_ms` for readiness; fills `events` and returns
    /// the ready prefix. `EINTR` is retried with the same timeout.
    #[allow(unsafe_code)]
    pub fn wait<'a>(
        &self,
        events: &'a mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<&'a [EpollEvent]> {
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(&events[..n as usize]);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// A nonblocking eventfd used to wake the event loop from other threads
/// (sim workers posting completions, the signal handler, shutdown).
///
/// `write(2)` on an eventfd is async-signal-safe, which is what lets the
/// SIGTERM handler nudge the loop directly.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a nonblocking, close-on-exec eventfd.
    #[allow(unsafe_code)]
    pub fn new() -> io::Result<EventFd> {
        let fd = check(unsafe { sys::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration and the signal handler.
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Add 1 to the counter, waking any epoll waiter. Errors are ignored:
    /// a full counter (EAGAIN) still leaves the fd readable, which is all
    /// a wake needs.
    pub fn wake(&self) {
        wake_raw(self.fd);
    }

    /// Drain the counter so level-triggered epoll stops reporting it.
    #[allow(unsafe_code)]
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { sys::read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for EventFd {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

// Safety: the wrapped fd is just an integer; eventfd read/write are
// thread-safe kernel operations.
#[allow(unsafe_code)]
unsafe impl Send for EventFd {}
#[allow(unsafe_code)]
unsafe impl Sync for EventFd {}

/// Write a wake token to an eventfd by raw fd. Used by the signal
/// handler, which can only touch pre-registered plain data.
#[allow(unsafe_code)]
pub fn wake_raw(fd: RawFd) {
    if fd < 0 {
        return;
    }
    let one: u64 = 1;
    unsafe { sys::write(fd, (&one as *const u64).cast(), 8) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: times out immediately.
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());

        ev.wake();
        let ready = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token(), 7);
        assert_ne!(ready[0].events() & EPOLLIN, 0);

        // After draining, the fd is quiet again.
        ev.drain();
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());
    }

    #[test]
    fn modify_and_del_change_interest() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 1).unwrap();
        ev.wake();

        // Drop read interest: the pending counter no longer reports.
        ep.modify(ev.raw_fd(), 0, 1).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());

        // Restore it: reported again (level-triggered).
        ep.modify(ev.raw_fd(), EPOLLIN, 2).unwrap();
        let ready = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(ready[0].token(), 2);

        ep.del(ev.raw_fd()).unwrap();
        assert!(ep.wait(&mut events, 0).unwrap().is_empty());
    }

    #[test]
    fn wake_raw_tolerates_bad_fd() {
        wake_raw(-1); // must not crash
    }
}
