//! The service wire format: JSON encodings of requests, workloads,
//! [`SimStats`], and [`RunReport`], plus their parsers.
//!
//! [`SimStats`] has exactly one serializer — [`SimStats::to_json`] in
//! `regmutex-sim` — and this module *parses* that format back; keeping a
//! single producer means the simulator and the service can never drift.
//! Checksums travel as `"0x…"` hex strings (a u64 does not survive the
//! f64 number model of generic JSON consumers).

use std::str::FromStr;

use regmutex::{RunReport, Technique};
use regmutex_compiler::RegPlan;
use regmutex_sim::{SimStats, StallReason};
use regmutex_workloads::suite;

use crate::json::Json;

/// A wire-format violation (unknown field value, missing field, wrong
/// type). Reported to clients as a structured 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn bad(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// A `POST /v1/run` body, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRequest {
    /// Workload name (required; case-insensitive against the registry).
    pub app: String,
    /// Technique (default: `regmutex`).
    pub technique: Technique,
    /// Run on the half-size register file (default: false).
    pub half_rf: bool,
    /// Grid-size override.
    pub ctas: Option<u32>,
    /// Forced `|Es|`.
    pub force_es: Option<u16>,
    /// Per-request cycle budget (min-ed with the server's cap).
    pub cycle_budget: Option<u64>,
    /// Opaque job lease id, echoed verbatim in the success response. A
    /// coordinator re-dispatching a job after a timeout stamps each attempt
    /// with a fresh lease, so a late reply from a presumed-dead worker can
    /// be told apart from the attempt actually being waited on. Execution
    /// is idempotent either way (results are content-addressed), so
    /// re-execution of a leased job is always safe.
    pub lease: Option<u64>,
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer"))),
    }
}

fn opt_bool(v: &Json, key: &str, default: bool) -> Result<bool, WireError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| bad(format!("'{key}' must be a boolean"))),
    }
}

fn req_u64(v: &Json, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer field '{key}'")))
}

fn narrow<T: TryFrom<u64>>(n: u64, key: &str) -> Result<T, WireError> {
    T::try_from(n).map_err(|_| bad(format!("'{key}' out of range")))
}

/// Decode a `/v1/run` body. Unknown fields are rejected so typos fail
/// loudly instead of silently running a default configuration.
pub fn parse_run_request(v: &Json) -> Result<RunRequest, WireError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| bad("body must be a JSON object"))?;
    const KNOWN: [&str; 7] = [
        "app",
        "technique",
        "half_rf",
        "ctas",
        "force_es",
        "cycle_budget",
        "lease",
    ];
    if let Some((k, _)) = obj.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
        return Err(bad(format!("unknown field '{k}'")));
    }
    let app = v
        .get("app")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing or non-string field 'app'"))?
        .to_string();
    if !suite::is_app(&app) {
        return Err(bad(format!(
            "unknown workload '{app}'; available: {}",
            suite::names().join(", ")
        )));
    }
    let technique = match v.get("technique") {
        None | Some(Json::Null) => Technique::RegMutex,
        Some(t) => {
            let s = t
                .as_str()
                .ok_or_else(|| bad("'technique' must be a string"))?;
            Technique::from_str(s).map_err(|e| bad(e.to_string()))?
        }
    };
    Ok(RunRequest {
        app,
        technique,
        half_rf: opt_bool(v, "half_rf", false)?,
        ctas: opt_u64(v, "ctas")?
            .map(|n| narrow::<u32>(n, "ctas"))
            .transpose()?,
        force_es: opt_u64(v, "force_es")?
            .map(|n| narrow::<u16>(n, "force_es"))
            .transpose()?,
        cycle_budget: opt_u64(v, "cycle_budget")?,
        lease: opt_u64(v, "lease")?,
    })
}

/// Encode a [`RunRequest`] as a `/v1/run` body — the client-side inverse
/// of [`parse_run_request`], used by the fleet coordinator and tests.
/// Defaults are omitted so the encoding round-trips through the strict
/// parser.
pub fn run_request_json(req: &RunRequest) -> Json {
    let mut pairs = vec![
        ("app".into(), Json::Str(req.app.clone())),
        ("technique".into(), Json::Str(req.technique.to_string())),
    ];
    if req.half_rf {
        pairs.push(("half_rf".into(), Json::Bool(true)));
    }
    if let Some(ctas) = req.ctas {
        pairs.push(("ctas".into(), Json::U64(u64::from(ctas))));
    }
    if let Some(es) = req.force_es {
        pairs.push(("force_es".into(), Json::U64(u64::from(es))));
    }
    if let Some(b) = req.cycle_budget {
        pairs.push(("cycle_budget".into(), Json::U64(b)));
    }
    if let Some(lease) = req.lease {
        pairs.push(("lease".into(), Json::U64(lease)));
    }
    Json::Obj(pairs)
}

/// The workload registry as machine-readable JSON — the same rows as
/// `regmutex-cli list`, structured.
pub fn workloads_json() -> Json {
    Json::Arr(
        suite::all()
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(w.name.to_string())),
                    ("regs".into(), Json::U64(u64::from(w.table_regs))),
                    ("base_set".into(), Json::U64(u64::from(w.table_bs))),
                    (
                        "threads_per_cta".into(),
                        Json::U64(u64::from(w.kernel.threads_per_cta)),
                    ),
                    (
                        "shmem_per_cta".into(),
                        Json::U64(u64::from(w.kernel.shmem_per_cta)),
                    ),
                    ("grid_ctas".into(), Json::U64(u64::from(w.grid_ctas))),
                    ("group".into(), Json::Str(format!("{:?}", w.group))),
                ])
            })
            .collect(),
    )
}

/// Serialize stats by parsing the canonical single-producer encoding.
pub fn stats_to_json(stats: &SimStats) -> Json {
    crate::json::parse(&stats.to_json()).expect("SimStats::to_json emits valid JSON")
}

fn checksum_from(v: &Json) -> Result<u64, WireError> {
    let s = v
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing or non-string field 'checksum'"))?;
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| bad("'checksum' must be an 0x-prefixed hex string"))?;
    u64::from_str_radix(hex, 16).map_err(|_| bad(format!("invalid checksum '{s}'")))
}

/// Decode [`SimStats`] from the wire encoding.
pub fn stats_from_json(v: &Json) -> Result<SimStats, WireError> {
    let mut stats = SimStats {
        cycles: req_u64(v, "cycles")?,
        instructions: req_u64(v, "instructions")?,
        ctas: req_u64(v, "ctas")?,
        warps: req_u64(v, "warps")?,
        acquire_attempts: req_u64(v, "acquire_attempts")?,
        acquire_successes: req_u64(v, "acquire_successes")?,
        releases: req_u64(v, "releases")?,
        empty_scheduler_cycles: req_u64(v, "empty_scheduler_cycles")?,
        resident_warp_cycles: req_u64(v, "resident_warp_cycles")?,
        checksum: checksum_from(v)?,
        spills: req_u64(v, "spills")?,
        mem_requests: req_u64(v, "mem_requests")?,
        reg_reads: req_u64(v, "reg_reads")?,
        reg_writes: req_u64(v, "reg_writes")?,
        skipped_cycles: req_u64(v, "skipped_cycles")?,
        step_calls: req_u64(v, "step_calls")?,
        ..Default::default()
    };
    let stalls = v
        .get("stall_cycles")
        .and_then(Json::as_obj)
        .ok_or_else(|| bad("missing or non-object field 'stall_cycles'"))?;
    for (name, count) in stalls {
        let reason = StallReason::from_str(name)
            .map_err(|()| bad(format!("unknown stall reason '{name}'")))?;
        let n = count
            .as_u64()
            .ok_or_else(|| bad(format!("stall count for '{name}' must be an integer")))?;
        stats.stall_cycles.insert(reason, n);
    }
    Ok(stats)
}

fn plan_to_json(plan: &RegPlan) -> Json {
    Json::Obj(vec![
        ("bs".into(), Json::U64(u64::from(plan.bs))),
        ("es".into(), Json::U64(u64::from(plan.es))),
        ("total_regs".into(), Json::U64(u64::from(plan.total_regs))),
        (
            "srp_sections".into(),
            Json::U64(u64::from(plan.srp_sections)),
        ),
        (
            "occupancy_warps".into(),
            Json::U64(u64::from(plan.occupancy_warps)),
        ),
    ])
}

fn plan_from_json(v: &Json) -> Result<RegPlan, WireError> {
    Ok(RegPlan {
        bs: narrow(req_u64(v, "bs")?, "bs")?,
        es: narrow(req_u64(v, "es")?, "es")?,
        total_regs: narrow(req_u64(v, "total_regs")?, "total_regs")?,
        srp_sections: narrow(req_u64(v, "srp_sections")?, "srp_sections")?,
        occupancy_warps: narrow(req_u64(v, "occupancy_warps")?, "occupancy_warps")?,
    })
}

/// Serialize a [`RunReport`] (everything a client needs to reconstruct
/// the run: identity, plan, occupancy model, and full stats).
pub fn report_to_json(report: &RunReport) -> Json {
    Json::Obj(vec![
        ("technique".into(), Json::Str(report.technique.to_string())),
        ("kernel_name".into(), Json::Str(report.kernel_name.clone())),
        (
            "theoretical_occupancy_warps".into(),
            Json::U64(u64::from(report.theoretical_occupancy_warps)),
        ),
        ("max_warps".into(), Json::U64(u64::from(report.max_warps))),
        (
            "storage_overhead_bits".into(),
            Json::U64(report.storage_overhead_bits),
        ),
        (
            "plan".into(),
            report.plan.as_ref().map_or(Json::Null, plan_to_json),
        ),
        ("stats".into(), stats_to_json(&report.stats)),
    ])
}

/// Decode a [`RunReport`] from the wire encoding.
pub fn report_from_json(v: &Json) -> Result<RunReport, WireError> {
    let technique = v
        .get("technique")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing or non-string field 'technique'"))?;
    let plan = match v.get("plan") {
        None | Some(Json::Null) => None,
        Some(p) => Some(plan_from_json(p)?),
    };
    Ok(RunReport {
        technique: Technique::from_str(technique).map_err(|e| bad(e.to_string()))?,
        kernel_name: v
            .get("kernel_name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing or non-string field 'kernel_name'"))?
            .to_string(),
        stats: stats_from_json(v.get("stats").ok_or_else(|| bad("missing field 'stats'"))?)?,
        plan,
        theoretical_occupancy_warps: narrow(
            req_u64(v, "theoretical_occupancy_warps")?,
            "theoretical_occupancy_warps",
        )?,
        max_warps: narrow(req_u64(v, "max_warps")?, "max_warps")?,
        storage_overhead_bits: req_u64(v, "storage_overhead_bits")?,
    })
}

/// The `/v1/run` success body: the report plus request identity, derived
/// convenience metrics, and whether the result came from the cache. A
/// request that carried a lease id gets it echoed back (absent otherwise,
/// keeping lease-less responses byte-stable).
pub fn run_response_json(app: &str, report: &RunReport, cached: bool, lease: Option<u64>) -> Json {
    let mut pairs = vec![
        ("app".into(), Json::Str(app.to_string())),
        ("cached".into(), Json::Bool(cached)),
        ("cycles".into(), Json::U64(report.stats.cycles)),
        ("ipc".into(), Json::F64(report.stats.ipc())),
        (
            "occupancy_percent".into(),
            Json::U64(u64::from(report.occupancy_percent())),
        ),
        (
            "checksum".into(),
            Json::Str(format!("{:#018x}", report.stats.checksum)),
        ),
    ];
    if let Some(lease) = lease {
        pairs.push(("lease".into(), Json::U64(lease)));
    }
    if let Json::Obj(report_pairs) = report_to_json(report) {
        pairs.extend(report_pairs);
    }
    Json::Obj(pairs)
}

/// A structured error body: `{"error": "..."}`.
pub fn error_json(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.to_string()))]).encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_stats() -> SimStats {
        let mut s = SimStats {
            cycles: 123_456,
            instructions: 999,
            ctas: 12,
            warps: 96,
            acquire_attempts: 40,
            acquire_successes: 31,
            releases: 30,
            empty_scheduler_cycles: 17,
            resident_warp_cycles: 88_000,
            checksum: 0xFEDC_BA98_7654_3210,
            spills: 3,
            mem_requests: 421,
            reg_reads: 2500,
            reg_writes: 1300,
            skipped_cycles: 100_000,
            step_calls: 23_456,
            ..Default::default()
        };
        s.stall_cycles.insert(StallReason::Scoreboard, 100);
        s.stall_cycles.insert(StallReason::Acquire, 55);
        s
    }

    fn sample_report(plan: bool) -> RunReport {
        RunReport {
            technique: Technique::RegMutexPaired,
            kernel_name: "BFS".into(),
            stats: sample_stats(),
            plan: plan.then_some(RegPlan {
                bs: 10,
                es: 4,
                total_regs: 14,
                srp_sections: 12,
                occupancy_warps: 48,
            }),
            theoretical_occupancy_warps: 48,
            max_warps: 48,
            storage_overhead_bits: 1234,
        }
    }

    #[test]
    fn stats_round_trip_is_lossless() {
        let original = sample_stats();
        let wire = parse(&original.to_json()).expect("sim emits valid JSON");
        let back = stats_from_json(&wire).unwrap();
        assert_eq!(back, original);
        // And the checksum survived above-2^53 precision.
        assert_eq!(back.checksum, 0xFEDC_BA98_7654_3210);
    }

    #[test]
    fn report_round_trip_is_lossless() {
        for with_plan in [true, false] {
            let original = sample_report(with_plan);
            let wire = report_to_json(&original);
            // Through text, as a real client would see it.
            let back = report_from_json(&parse(&wire.encode()).unwrap()).unwrap();
            assert_eq!(report_to_json(&back), wire);
            assert_eq!(back.stats, original.stats);
            assert_eq!(back.technique, original.technique);
            assert_eq!(back.plan.is_some(), with_plan);
        }
    }

    #[test]
    fn run_request_defaults_and_validation() {
        let r = parse_run_request(&parse(r#"{"app":"BFS"}"#).unwrap()).unwrap();
        assert_eq!(r.technique, Technique::RegMutex);
        assert!(!r.half_rf);
        assert_eq!(r.ctas, None);

        let r = parse_run_request(
            &parse(r#"{"app":"SAD","technique":"paired","half_rf":true,"ctas":90,"force_es":8,"cycle_budget":5000}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(r.technique, Technique::RegMutexPaired);
        assert!(r.half_rf);
        assert_eq!(r.ctas, Some(90));
        assert_eq!(r.force_es, Some(8));
        assert_eq!(r.cycle_budget, Some(5000));
    }

    #[test]
    fn run_request_json_round_trips_through_the_strict_parser() {
        for req in [
            RunRequest {
                app: "BFS".into(),
                technique: Technique::RegMutex,
                half_rf: false,
                ctas: None,
                force_es: None,
                cycle_budget: None,
                lease: None,
            },
            RunRequest {
                app: "SAD".into(),
                technique: Technique::Baseline,
                half_rf: true,
                ctas: Some(90),
                force_es: Some(8),
                cycle_budget: Some(5000),
                lease: Some(0xfeed_beef_dead_cafe),
            },
        ] {
            let body = run_request_json(&req).encode();
            let back = parse_run_request(&parse(&body).unwrap()).unwrap();
            assert_eq!(back, req, "{body}");
        }
    }

    #[test]
    fn lease_is_echoed_only_when_present() {
        let report = sample_report(true);
        let with = run_response_json("BFS", &report, false, Some(42)).encode();
        assert!(with.contains("\"lease\":42"), "{with}");
        let without = run_response_json("BFS", &report, false, None).encode();
        assert!(!without.contains("\"lease\""), "{without}");
    }

    #[test]
    fn run_request_rejects_garbage() {
        for bad_body in [
            r#"{}"#,                             // missing app
            r#"{"app":"Nope"}"#,                 // unknown workload
            r#"{"app":"BFS","technique":"x"}"#,  // unknown technique
            r#"{"app":"BFS","ctas":-1}"#,        // negative integer
            r#"{"app":"BFS","ctas":"many"}"#,    // wrong type
            r#"{"app":"BFS","force_es":70000}"#, // u16 overflow
            r#"{"app":"BFS","typo_field":1}"#,   // unknown field
            r#"{"app":1}"#,                      // wrong type for app
            r#"[1,2]"#,                          // not an object
        ] {
            let v = parse(bad_body).unwrap();
            assert!(parse_run_request(&v).is_err(), "should reject {bad_body}");
        }
    }

    #[test]
    fn workloads_json_lists_all_sixteen() {
        let v = workloads_json();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 16);
        let bfs = arr
            .iter()
            .find(|w| w.get("name").and_then(Json::as_str) == Some("BFS"))
            .unwrap();
        assert!(bfs.get("regs").and_then(Json::as_u64).unwrap() > 0);
        assert!(bfs.get("grid_ctas").and_then(Json::as_u64).unwrap() > 0);
        assert!(bfs.get("group").and_then(Json::as_str).is_some());
    }

    #[test]
    fn stats_from_json_rejects_unknown_stall_reason() {
        let mut text = sample_stats().to_json();
        text = text.replace("\"scoreboard\"", "\"warpdrive\"");
        let err = stats_from_json(&parse(&text).unwrap()).unwrap_err();
        assert!(err.0.contains("warpdrive"), "{err}");
    }

    #[test]
    fn error_json_shape() {
        assert_eq!(error_json("x \"y\""), r#"{"error":"x \"y\""}"#);
    }
}
