//! The nonblocking serving core: one epoll thread multiplexing every
//! connection through a per-connection state machine.
//!
//! ```text
//!  epoll_wait ──► accept (listener)            completions (eventfd)
//!       │              │                              ▲
//!       │              ▼                              │ posted by sim
//!       │        Conn slab entry                      │ workers / fuzz
//!       │   reading-head → reading-body → dispatched → writing
//!       │        │                │                    │
//!       │        └── timer wheel deadlines (408 / idle close)
//!       └── pipelined slots: ordered responses, bounded depth
//! ```
//!
//! Design rules the loop lives by:
//!
//! * **Level-triggered epoll, explicit interest.** The loop never leaves
//!   readable bytes unread while subscribed to `EPOLLIN`; when a
//!   connection's pipeline is full (or it is closing) read interest is
//!   dropped and TCP backpressure holds the rest.
//! * **Responses are ordered.** Each parsed request occupies one slot in
//!   a per-connection queue; only the front slot may write. A streaming
//!   slot (chunked sweep / fuzz progress) writes incrementally as
//!   completions arrive.
//! * **Errors close.** A framing error (400/408/413) is answered after
//!   the responses already owed, then the connection closes — nothing
//!   after untrusted framing is believed.
//! * **Deadlines are absolute.** The timer wheel arms one deadline per
//!   connection (request read, idle keep-alive, write stall) measured
//!   from the state transition, so a slow drip cannot extend it the way
//!   per-read `SO_RCVTIMEO` could.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, Response};
use crate::poll::{Epoll, EpollEvent, EventFd, EPOLLIN, EPOLLOUT};
use crate::server::{dispatch_request, RequestAction, ServerState};
use crate::timer::{TimerEntry, TimerWheel};
use crate::wire;

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Timer-wheel granularity; also the idle epoll timeout.
const TICK: Duration = Duration::from_millis(50);
/// How long a quiescing drain waits before force-closing connections.
const DRAIN_FORCE_AFTER: Duration = Duration::from_secs(30);

/// Addresses one pipelined request slot on one connection, across slab
/// reuse (`generation`) — completions carrying a stale token are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotToken {
    pub(crate) conn: usize,
    pub(crate) generation: u64,
    pub(crate) seq: u64,
}

/// What a worker thread sends back to the loop for a dispatched slot.
pub(crate) enum Completion {
    /// A complete response for a `Waiting` slot.
    Respond(SlotToken, Response),
    /// Begin a chunked streaming response on a `Waiting` slot.
    StreamStart(SlotToken, u16, &'static str),
    /// One payload chunk of a streaming slot (not yet chunk-framed).
    StreamChunk(SlotToken, Vec<u8>),
    /// Terminate a streaming slot.
    StreamEnd(SlotToken),
}

/// The worker → loop channel: a mutex-guarded queue plus an eventfd that
/// wakes `epoll_wait`.
pub(crate) struct CompletionQueue {
    items: Mutex<VecDeque<Completion>>,
    wake: EventFd,
}

impl CompletionQueue {
    pub(crate) fn new() -> std::io::Result<Self> {
        Ok(CompletionQueue {
            items: Mutex::new(VecDeque::new()),
            wake: EventFd::new()?,
        })
    }

    /// Post one completion and wake the loop.
    pub(crate) fn post(&self, c: Completion) {
        self.items.lock().unwrap().push_back(c);
        self.wake.wake();
    }

    /// Wake the loop without posting (shutdown, flag changes).
    pub(crate) fn wake_now(&self) {
        self.wake.wake();
    }

    /// The eventfd, for epoll registration and the signal handler.
    pub(crate) fn wake_fd(&self) -> std::os::fd::RawFd {
        self.wake.raw_fd()
    }

    fn drain(&self) -> VecDeque<Completion> {
        self.wake.drain();
        std::mem::take(&mut *self.items.lock().unwrap())
    }
}

/// Per-client token buckets: fairness above the queue's global 429.
///
/// Each client IP accrues `rate` tokens/second up to `burst`; a
/// job-bearing request spends one. A dry bucket means 429 with a
/// computed `Retry-After` — one greedy client can no longer starve the
/// queue for everyone behind the same load balancer tier. `rate <= 0`
/// disables the policy (the default: single-tenant benches).
pub(crate) struct TokenBuckets {
    rate: f64,
    burst: f64,
    buckets: HashMap<IpAddr, (f64, Instant)>,
}

impl TokenBuckets {
    pub(crate) fn new(rate: f64, burst: f64) -> Self {
        TokenBuckets {
            rate,
            burst: burst.max(1.0),
            buckets: HashMap::new(),
        }
    }

    /// Spend one token for `ip`, or report how many whole seconds until
    /// one accrues.
    pub(crate) fn try_take(&mut self, ip: IpAddr, now: Instant) -> Result<(), u64> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        if self.buckets.len() > 10_000 {
            let burst = self.burst;
            let rate = self.rate;
            // Drop buckets that have already refilled completely.
            self.buckets.retain(|_, (tokens, last)| {
                *tokens + now.saturating_duration_since(*last).as_secs_f64() * rate < burst
            });
        }
        let (tokens, last) = self.buckets.entry(ip).or_insert((self.burst, now));
        let dt = now.saturating_duration_since(*last).as_secs_f64();
        *tokens = (*tokens + dt * self.rate).min(self.burst);
        *last = now;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            Ok(())
        } else {
            Err(((1.0 - *tokens) / self.rate).ceil().max(1.0) as u64)
        }
    }
}

enum SlotState {
    /// Dispatched; a completion will fill it.
    Waiting,
    /// A full response ready to serialize.
    Ready(Response),
    /// A chunked response in flight.
    Streaming {
        head: Option<Vec<u8>>,
        chunks: VecDeque<Vec<u8>>,
        done: bool,
    },
}

struct PipeSlot {
    seq: u64,
    keep_alive: bool,
    /// Close the connection after this slot is written (framing errors).
    close_after: bool,
    state: SlotState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    /// A request is (or should start) arriving: 408 on expiry.
    Request,
    /// Idle keep-alive connection: close silently on expiry.
    Idle,
    /// Flushing bytes the peer will not take: close on expiry.
    Write,
}

struct Conn {
    stream: TcpStream,
    peer: IpAddr,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    slots: VecDeque<PipeSlot>,
    next_seq: u64,
    requests_served: u64,
    /// EOF seen (or reads abandoned after a framing error).
    read_closed: bool,
    /// No further requests will be parsed from this connection.
    stop_parsing: bool,
    /// Close once every owed byte is flushed.
    close_pending: bool,
    /// Drain mode: serve what is in flight, admit nothing new.
    draining: bool,
    dead: bool,
    registered: u32,
    deadline: Option<(u64, DeadlineKind)>,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.write_pos >= self.write_buf.len()
    }
}

/// Everything a connection step needs besides the connection itself.
struct Env<'a> {
    state: &'a Arc<ServerState>,
    ep: &'a Epoll,
    wheel: &'a mut TimerWheel,
    fair: &'a mut TokenBuckets,
    loop_started: Instant,
    scratch: &'a mut [u8],
}

impl Env<'_> {
    fn limits(&self) -> &http::Limits {
        &self.state.cfg.limits
    }

    fn read_cap(&self) -> usize {
        self.limits().max_head_bytes + self.limits().max_body_bytes + 4096
    }
}

/// The loop body of the serving thread. Returns when quiescing finishes:
/// listener closed, every connection drained or force-closed.
pub(crate) fn run_event_loop(listener: TcpListener, state: Arc<ServerState>) {
    let ep = Epoll::new().expect("epoll_create1");
    ep.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        .expect("register listener");
    ep.add(state.completions.wake_fd(), EPOLLIN, TOKEN_WAKE)
        .expect("register wake eventfd");

    let mut listener = Some(listener);
    let loop_started = Instant::now();
    let mut wheel = TimerWheel::new(TICK);
    let mut fair = TokenBuckets::new(state.cfg.client_rate, state.cfg.client_burst);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut gens: Vec<u64> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live: usize = 0;
    let mut events = vec![EpollEvent::zeroed(); 256];
    let mut scratch = vec![0u8; 16 * 1024];
    let mut quiesce_started: Option<Instant> = None;
    let mut touched: Vec<usize> = Vec::new();

    loop {
        touched.clear();
        let timeout_ms = TICK.as_millis() as i32;
        let ready = match ep.wait(&mut events, timeout_ms) {
            Ok(r) => r,
            Err(_) => &[],
        };

        let mut accept_ready = false;
        for ev in ready {
            match ev.token() {
                TOKEN_LISTENER => accept_ready = true,
                TOKEN_WAKE => {} // drained with the completion queue below
                idx => touched.push(idx as usize),
            }
        }

        // Quiesce transition: triggered by shutdown_and_wait, or directly
        // by SIGINT/SIGTERM when the daemon opted in (the handler wrote
        // our eventfd, so we get here within one wakeup).
        let quiescing = state.quiesce.load(Ordering::SeqCst)
            || (state.cfg.drain_on_signal && crate::signal::triggered());
        if quiescing && quiesce_started.is_none() {
            quiesce_started = Some(Instant::now());
            state.draining.store(true, Ordering::SeqCst);
            if let Some(l) = listener.take() {
                let _ = ep.del(l.as_raw_fd());
            }
            for (idx, entry) in conns.iter_mut().enumerate() {
                if let Some(conn) = entry {
                    conn.draining = true;
                    touched.push(idx);
                }
            }
        }

        if accept_ready {
            if let Some(l) = &listener {
                accept_all(
                    l,
                    &state,
                    &ep,
                    &mut conns,
                    &mut gens,
                    &mut free,
                    &mut live,
                    &mut touched,
                );
            }
        }

        for completion in state.completions.drain() {
            if let Some(idx) = apply_completion(completion, &mut conns, &gens) {
                touched.push(idx);
            }
        }

        // Timer wheel: fire every expired deadline.
        let now_tick = wheel.now_tick(loop_started.elapsed());
        for entry in wheel.advance(now_tick) {
            if entry.conn < conns.len() && gens[entry.conn] == entry.generation {
                if let Some(conn) = conns[entry.conn].as_mut() {
                    // Lazy cancellation: fire only if this entry still IS
                    // the armed deadline (same tick); re-armed or cleared
                    // deadlines abandon their old wheel entries.
                    if let Some((tick, kind)) = conn.deadline {
                        if tick == entry.tick {
                            fire_deadline(conn, kind, &state);
                            touched.push(entry.conn);
                        }
                    }
                }
            }
        }

        // Drive every touched connection through its state machine.
        touched.sort_unstable();
        touched.dedup();
        for &idx in &touched {
            if idx >= conns.len() {
                continue;
            }
            let Some(conn) = conns[idx].as_mut() else {
                continue;
            };
            let mut env = Env {
                state: &state,
                ep: &ep,
                wheel: &mut wheel,
                fair: &mut fair,
                loop_started,
                scratch: &mut scratch,
            };
            step_conn(conn, idx, gens[idx], &mut env);
            if conn.dead {
                close_conn(
                    idx, &state, &ep, &mut conns, &mut gens, &mut free, &mut live,
                );
            }
        }

        // A drain that cannot complete (peer holding a stream hostage)
        // is force-closed after a generous deadline.
        if let Some(t0) = quiesce_started {
            if t0.elapsed() > DRAIN_FORCE_AFTER {
                for idx in 0..conns.len() {
                    if conns[idx].is_some() {
                        close_conn(
                            idx, &state, &ep, &mut conns, &mut gens, &mut free, &mut live,
                        );
                    }
                }
            }
            if listener.is_none() && live == 0 {
                return;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_all(
    listener: &TcpListener,
    state: &ServerState,
    ep: &Epoll,
    conns: &mut Vec<Option<Conn>>,
    gens: &mut Vec<u64>,
    free: &mut Vec<usize>,
    live: &mut usize,
    touched: &mut Vec<usize>,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if *live >= state.cfg.max_connections {
                    overloaded(stream, state);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                let conn = Conn {
                    stream,
                    peer: peer.ip(),
                    read_buf: Vec::new(),
                    write_buf: Vec::new(),
                    write_pos: 0,
                    slots: VecDeque::new(),
                    next_seq: 0,
                    requests_served: 0,
                    read_closed: false,
                    stop_parsing: false,
                    close_pending: false,
                    draining: false,
                    dead: false,
                    registered: EPOLLIN,
                    deadline: None,
                };
                let idx = match free.pop() {
                    Some(i) => {
                        conns[i] = Some(conn);
                        i
                    }
                    None => {
                        conns.push(Some(conn));
                        gens.push(0);
                        conns.len() - 1
                    }
                };
                let fd = conns[idx].as_ref().unwrap().stream.as_raw_fd();
                if ep.add(fd, EPOLLIN, idx as u64).is_err() {
                    conns[idx] = None;
                    free.push(idx);
                    continue;
                }
                *live += 1;
                state.active_connections.fetch_add(1, Ordering::SeqCst);
                touched.push(idx);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Reject a connection over the concurrency cap without admitting it.
fn overloaded(mut stream: TcpStream, state: &ServerState) {
    let resp = Response::json(503, wire::error_json("server at connection capacity"))
        .with_header("retry-after", "1");
    let bytes = http::encode_response(&resp, false);
    let _ = stream.set_nonblocking(true);
    let _ = stream.write(&bytes);
    state.metrics.record_request("overload", 503);
}

/// Route a completion to its slot; returns the connection to re-step.
fn apply_completion(c: Completion, conns: &mut [Option<Conn>], gens: &[u64]) -> Option<usize> {
    let token = match &c {
        Completion::Respond(t, _)
        | Completion::StreamStart(t, _, _)
        | Completion::StreamChunk(t, _)
        | Completion::StreamEnd(t) => *t,
    };
    if token.conn >= conns.len() || gens[token.conn] != token.generation {
        return None; // connection is gone; drop the result
    }
    let conn = conns[token.conn].as_mut()?;
    let slot = conn.slots.iter_mut().find(|s| s.seq == token.seq)?;
    match c {
        Completion::Respond(_, resp) => {
            if matches!(slot.state, SlotState::Waiting) {
                slot.state = SlotState::Ready(resp);
            }
        }
        Completion::StreamStart(_, status, content_type) => {
            if matches!(slot.state, SlotState::Waiting) {
                let ka = slot.keep_alive && !slot.close_after;
                slot.state = SlotState::Streaming {
                    head: Some(http::encode_stream_head(status, content_type, ka)),
                    chunks: VecDeque::new(),
                    done: false,
                };
            }
        }
        Completion::StreamChunk(_, data) => {
            if let SlotState::Streaming { chunks, .. } = &mut slot.state {
                chunks.push_back(data);
            }
        }
        Completion::StreamEnd(_) => {
            if let SlotState::Streaming { done, .. } = &mut slot.state {
                *done = true;
            }
        }
    }
    Some(token.conn)
}

/// One full pass of a connection's state machine: read, parse+dispatch,
/// serialize+write, then decide interest, deadline, and liveness.
fn step_conn(conn: &mut Conn, idx: usize, generation: u64, env: &mut Env<'_>) {
    pump_read(conn, env);
    // Alternate parse and write until the parser stops making progress.
    // One pass is not enough: a peer that pipelines deeper than
    // max_pipeline parks the excess bytes in read_buf, and no further
    // EPOLLIN will arrive to revisit them (the peer is waiting on these
    // very responses) — the write pump freeing slots is what re-opens
    // the window, so re-parse after it.
    while !conn.dead {
        let buffered = conn.read_buf.len();
        let slots = conn.slots.len();
        parse_and_dispatch(conn, idx, generation, env);
        if conn.dead {
            break;
        }
        pump_write(conn, env);
        let progressed = conn.read_buf.len() < buffered || conn.slots.len() < slots;
        if conn.dead || conn.read_buf.is_empty() || !progressed {
            break;
        }
    }
    if !conn.dead {
        let drained = conn.slots.is_empty() && conn.flushed();
        if drained && (conn.close_pending || conn.read_closed || conn.draining) {
            conn.dead = true;
        }
    }
    if conn.dead {
        return;
    }
    update_interest(conn, idx, env);
    update_deadline(conn, idx, generation, env);
}

fn wants_read(conn: &Conn, env: &Env<'_>) -> bool {
    !conn.read_closed
        && !conn.stop_parsing
        && !conn.close_pending
        && !conn.draining
        && conn.slots.len() < env.limits().max_pipeline
        && conn.read_buf.len() < env.read_cap()
}

fn pump_read(conn: &mut Conn, env: &mut Env<'_>) {
    if !wants_read(conn, env) {
        return;
    }
    loop {
        if conn.read_buf.len() >= env.read_cap() {
            return;
        }
        match conn.stream.read(env.scratch) {
            Ok(0) => {
                conn.read_closed = true;
                return;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&env.scratch[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Queue an error response as the connection's final slot.
fn push_error_slot(conn: &mut Conn, status: u16, detail: &str, env: &Env<'_>) {
    conn.stop_parsing = true;
    conn.read_closed = true;
    let seq = conn.next_seq;
    conn.next_seq += 1;
    conn.slots.push_back(PipeSlot {
        seq,
        keep_alive: false,
        close_after: true,
        state: SlotState::Ready(Response::json(status, wire::error_json(detail))),
    });
    env.state.pipeline_depth.fetch_add(1, Ordering::Relaxed);
    env.state.metrics.record_request("unparsed", status);
}

fn parse_and_dispatch(conn: &mut Conn, idx: usize, generation: u64, env: &mut Env<'_>) {
    while !conn.stop_parsing
        && !conn.draining
        && conn.slots.len() < env.limits().max_pipeline
        && !conn.read_buf.is_empty()
    {
        match http::parse_request_buf(&conn.read_buf, env.limits()) {
            Ok(None) => {
                if conn.read_closed {
                    // EOF mid-request: answer 400 like the blocking
                    // reader's "truncated request head" and close.
                    push_error_slot(conn, 400, "truncated request head", env);
                }
                return;
            }
            Ok(Some((request, consumed))) => {
                conn.read_buf.drain(..consumed);
                conn.deadline = None; // the next request re-arms fresh
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let keep_alive = request.wants_keep_alive();
                conn.slots.push_back(PipeSlot {
                    seq,
                    keep_alive,
                    close_after: false,
                    state: SlotState::Waiting,
                });
                env.state.pipeline_depth.fetch_add(1, Ordering::Relaxed);
                let token = SlotToken {
                    conn: idx,
                    generation,
                    seq,
                };
                match dispatch_request(env.state, &request, token, conn.peer, env.fair) {
                    RequestAction::Respond(resp) => {
                        let slot = conn.slots.back_mut().expect("just pushed");
                        slot.state = SlotState::Ready(resp);
                    }
                    RequestAction::Pending => {}
                }
                if !keep_alive {
                    conn.stop_parsing = true;
                }
            }
            Err(e) => {
                let status = e.status();
                if status != 0 {
                    push_error_slot(conn, status, &e.detail(), env);
                } else {
                    conn.dead = true;
                }
                return;
            }
        }
    }
    if conn.read_closed && conn.read_buf.is_empty() && conn.slots.is_empty() && conn.flushed() {
        conn.dead = true; // peer hung up cleanly with nothing owed
    }
}

fn pump_write(conn: &mut Conn, env: &mut Env<'_>) {
    // Serialize every front slot that can produce bytes, in order.
    while let Some(front) = conn.slots.front_mut() {
        match &mut front.state {
            SlotState::Waiting => break,
            SlotState::Ready(resp) => {
                let ka = front.keep_alive && !front.close_after && !conn.draining;
                let bytes = http::encode_response(resp, ka);
                conn.write_buf.extend_from_slice(&bytes);
                if !ka {
                    conn.close_pending = true;
                }
                conn.requests_served += 1;
                env.state.pipeline_depth.fetch_sub(1, Ordering::Relaxed);
                conn.slots.pop_front();
            }
            SlotState::Streaming { head, chunks, done } => {
                if let Some(h) = head.take() {
                    conn.write_buf.extend_from_slice(&h);
                }
                while let Some(data) = chunks.pop_front() {
                    conn.write_buf.extend_from_slice(&http::encode_chunk(&data));
                }
                if !*done {
                    break; // stay front until the stream ends
                }
                conn.write_buf.extend_from_slice(http::CHUNK_END);
                let ka = front.keep_alive && !front.close_after && !conn.draining;
                if !ka {
                    conn.close_pending = true;
                }
                conn.requests_served += 1;
                env.state.pipeline_depth.fetch_sub(1, Ordering::Relaxed);
                conn.slots.pop_front();
            }
        }
    }

    // Flush as much as the socket takes.
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.write_pos += n;
                if matches!(conn.deadline, Some((_, DeadlineKind::Write))) {
                    conn.deadline = None; // progress: re-arm from now
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.flushed() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
}

fn update_interest(conn: &mut Conn, idx: usize, env: &Env<'_>) {
    let mut mask = 0;
    if wants_read(conn, env) {
        mask |= EPOLLIN;
    }
    if !conn.flushed() {
        mask |= EPOLLOUT;
    }
    if mask != conn.registered {
        if env
            .ep
            .modify(conn.stream.as_raw_fd(), mask, idx as u64)
            .is_err()
        {
            conn.dead = true;
            return;
        }
        conn.registered = mask;
    }
}

fn update_deadline(conn: &mut Conn, idx: usize, generation: u64, env: &mut Env<'_>) {
    let limits = env.limits();
    let desired: Option<(Duration, DeadlineKind)> = if !conn.read_closed
        && !conn.stop_parsing
        && !conn.read_buf.is_empty()
        && conn.slots.len() < limits.max_pipeline
    {
        // A request has started arriving: absolute receive deadline.
        // With the pipeline window full the buffered bytes are complete
        // requests parked on slow jobs, not a slow-dripping peer — the
        // simulator watchdog bounds those, so no receive deadline then.
        Some((limits.read_timeout, DeadlineKind::Request))
    } else if !conn.flushed() {
        Some((limits.write_timeout, DeadlineKind::Write))
    } else if !conn.slots.is_empty() {
        None // waiting on jobs: the simulator watchdog bounds those
    } else if conn.requests_served == 0 && !conn.read_closed && !conn.stop_parsing {
        // A fresh connection must speak within the read timeout.
        Some((limits.read_timeout, DeadlineKind::Request))
    } else if !conn.read_closed && !conn.stop_parsing && !conn.draining {
        Some((limits.idle_timeout, DeadlineKind::Idle))
    } else {
        None
    };

    match desired {
        None => conn.deadline = None,
        Some((timeout, kind)) => {
            // Same kind ⇒ the armed deadline stays absolute; a kind
            // change re-arms from now.
            if conn.deadline.map(|(_, k)| k) != Some(kind) {
                let tick = env.wheel.tick_after(env.loop_started.elapsed(), timeout);
                env.wheel.schedule(TimerEntry {
                    conn: idx,
                    generation,
                    tick,
                });
                conn.deadline = Some((tick, kind));
            }
        }
    }
}

fn fire_deadline(conn: &mut Conn, kind: DeadlineKind, state: &ServerState) {
    conn.deadline = None;
    match kind {
        DeadlineKind::Request => {
            conn.stop_parsing = true;
            conn.read_closed = true;
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.slots.push_back(PipeSlot {
                seq,
                keep_alive: false,
                close_after: true,
                state: SlotState::Ready(Response::json(
                    408,
                    wire::error_json("timed out reading request"),
                )),
            });
            state.pipeline_depth.fetch_add(1, Ordering::Relaxed);
            state.metrics.record_request("unparsed", 408);
        }
        DeadlineKind::Idle | DeadlineKind::Write => {
            conn.dead = true;
        }
    }
}

fn close_conn(
    idx: usize,
    state: &ServerState,
    ep: &Epoll,
    conns: &mut [Option<Conn>],
    gens: &mut [u64],
    free: &mut Vec<usize>,
    live: &mut usize,
) {
    let Some(conn) = conns[idx].take() else {
        return;
    };
    let _ = ep.del(conn.stream.as_raw_fd());
    gens[idx] += 1;
    free.push(idx);
    *live -= 1;
    state.active_connections.fetch_sub(1, Ordering::SeqCst);
    if !conn.slots.is_empty() {
        state
            .pipeline_depth
            .fetch_sub(conn.slots.len(), Ordering::Relaxed);
    }
    state
        .metrics
        .requests_per_conn
        .observe(conn.requests_served);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_throttles_and_refills() {
        let ip: IpAddr = "127.0.0.1".parse().unwrap();
        let t0 = Instant::now();
        let mut b = TokenBuckets::new(10.0, 2.0);
        assert!(b.try_take(ip, t0).is_ok());
        assert!(b.try_take(ip, t0).is_ok());
        let retry = b.try_take(ip, t0).unwrap_err();
        assert!(retry >= 1);
        // 100 ms at 10 tokens/s refills one token.
        assert!(b.try_take(ip, t0 + Duration::from_millis(150)).is_ok());
    }

    #[test]
    fn token_bucket_disabled_at_zero_rate() {
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        let mut b = TokenBuckets::new(0.0, 1.0);
        for _ in 0..1000 {
            assert!(b.try_take(ip, Instant::now()).is_ok());
        }
    }

    #[test]
    fn buckets_are_per_client() {
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b_ip: IpAddr = "10.0.0.2".parse().unwrap();
        let t0 = Instant::now();
        let mut b = TokenBuckets::new(1.0, 1.0);
        assert!(b.try_take(a, t0).is_ok());
        assert!(b.try_take(a, t0).is_err(), "a is dry");
        assert!(b.try_take(b_ip, t0).is_ok(), "b has its own bucket");
    }
}
