//! The simulation service daemon.
//!
//! Topology (all std threads, no async runtime):
//!
//! ```text
//!  event-loop thread (epoll) ──► per-connection state machines
//!        │   keep-alive + pipelining, incremental parse, timer wheel
//!        │   dispatch: cheap routes answered inline; job routes queued
//!        ▼
//!  BoundedQueue<QueuedJob>   ── full → 429 + Retry-After
//!        │
//!        ▼
//!  sim worker threads ──► Runner::run_one (shared LRU ResultCache)
//!        │
//!        └──► CompletionQueue (+ eventfd wake) back to the loop:
//!             full responses, or chunked stream rows for sweeps/fuzz
//! ```
//!
//! Every route answers JSON except `/metrics` (Prometheus text). Requests
//! that fail to parse get structured 400/408/413 bodies — hostile bytes
//! never panic a worker or hang a connection (the HTTP layer enforces
//! head/body caps; the timer wheel enforces absolute read deadlines).
//!
//! Shutdown is two-phase: *draining* (`POST /v1/shutdown` or SIGTERM)
//! rejects new jobs with 503 but keeps serving probes and finishing
//! admitted work; *quiescing* ([`Server::shutdown_and_wait`]) closes the
//! listener, lets every in-flight response and stream complete, then
//! closes the queue and joins the workers.

use std::collections::HashMap;
use std::net::{IpAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use regmutex::{RunError, RunReport, Technique};
use regmutex_bench::runner::default_jobs;
use regmutex_bench::{CachedResult, JobSpec, ResultCache, Runner, DEFAULT_CACHE_BUDGET};
use regmutex_compiler::CompileOptions;
use regmutex_fuzz::{CampaignConfig, CampaignStats, FuzzReport};
use regmutex_sim::{GpuConfig, LaunchConfig};
use regmutex_workloads::suite;

use crate::event_loop::{run_event_loop, Completion, CompletionQueue, SlotToken, TokenBuckets};
use crate::http::{Limits, Request, Response};
use crate::json::{self, Json};
use crate::metrics::{Metrics, ServiceGauges};
use crate::queue::{BoundedQueue, PushError};
use crate::wire::{self, RunRequest};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Simulation worker threads draining the job queue.
    pub sim_workers: usize,
    /// Bounded job-queue capacity (beyond it: 429).
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_budget: usize,
    /// Cycle cap applied to every job (min-ed with per-request budgets);
    /// `None` leaves only the config watchdog.
    pub cycle_budget: Option<u64>,
    /// HTTP read limits and timeouts.
    pub limits: Limits,
    /// Maximum concurrent connections (beyond it: 503).
    pub max_connections: usize,
    /// Device-loop worker threads per job (`GpuConfig::sm_workers`): 0 lets
    /// each job resolve `REGMUTEX_SM_WORKERS` (default serial). Enters the
    /// job fingerprint, so runs at different shard counts cache separately —
    /// their reports are bit-identical regardless.
    pub sm_workers: u32,
    /// Per-client token-bucket refill rate (job requests per second per
    /// client IP). `0.0` disables the fairness policy.
    pub client_rate: f64,
    /// Token-bucket burst size per client IP.
    pub client_burst: f64,
    /// Quiesce the event loop directly on SIGINT/SIGTERM (set by the
    /// `serve` daemon; embedded servers drain via
    /// [`Server::shutdown_and_wait`] instead).
    pub drain_on_signal: bool,
    /// Durable result tier directory (`serve --cache-dir`): results are
    /// written through to `<dir>/store` and probed on cache misses, so a
    /// restarted server comes up warm. `None` keeps the cache
    /// memory-only.
    pub cache_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8077".to_string(),
            sim_workers: default_jobs(),
            queue_capacity: 64,
            cache_budget: DEFAULT_CACHE_BUDGET,
            cycle_budget: None,
            limits: Limits::default(),
            max_connections: 64,
            sm_workers: 0,
            client_rate: 0.0,
            client_burst: 8.0,
            drain_on_signal: false,
            cache_dir: None,
        }
    }
}

/// Where a finished job's result goes.
enum Sink {
    /// A `/v1/run` request: answer the slot directly.
    Run {
        token: SlotToken,
        app: String,
        lease: Option<u64>,
        /// Raw request body, kept when the response is memoizable
        /// (lease-less): the warm variant is stored for the fast path.
        body_key: Option<Vec<u8>>,
        started: Instant,
    },
    /// One step of a `/v1/sweep`: baseline (`es: None`) or a row.
    Sweep {
        task: Arc<Mutex<SweepTask>>,
        es: Option<u16>,
    },
}

/// One admitted job: the spec plus its result sink.
struct QueuedJob {
    spec: JobSpec,
    sink: Sink,
}

/// A `/v1/sweep` in flight: rows run one at a time (each completion
/// queues the next point), streamed or buffered.
struct SweepTask {
    token: SlotToken,
    base_req: RunRequest,
    es_points: Vec<u16>,
    /// Next index into `es_points` to submit.
    next: usize,
    stream: bool,
    base_report: Option<RunReport>,
    /// Buffered-mode accumulator (exactly the bytes streaming would send).
    buf: String,
    rows_emitted: usize,
}

/// Bound on the warm-response memo (entries, not bytes — responses are
/// small). Overflow clears the map; the ResultCache below still bounds
/// recompute cost.
const MEMO_MAX_ENTRIES: usize = 4096;

/// State shared by every thread of one server.
pub(crate) struct ServerState {
    pub(crate) cfg: ServerConfig,
    pub(crate) metrics: Metrics,
    cache: Arc<ResultCache>,
    runner: Runner,
    queue: BoundedQueue<QueuedJob>,
    /// Worker → event-loop channel (and its eventfd wake).
    pub(crate) completions: CompletionQueue,
    /// Set once shutdown begins: reject new jobs, report draining.
    pub(crate) draining: AtomicBool,
    /// Set to make the event loop close the listener and wind down.
    pub(crate) quiesce: AtomicBool,
    pub(crate) active_connections: AtomicUsize,
    pub(crate) pipeline_depth: AtomicUsize,
    inflight_jobs: AtomicUsize,
    /// Detached `/v1/fuzz` campaign threads still running.
    active_fuzz: AtomicUsize,
    /// Total 429 responses (mirrors metrics, readable without the map lock).
    rejected: AtomicU64,
    /// Exact warm-path memo: raw lease-less `/v1/run` body → stored
    /// `"cached":true` response bytes. Repeat requests never touch the
    /// job queue — this is what makes the closed-loop warm RPS target
    /// reachable on one core.
    memo: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    /// When the server started (uptime in `/healthz`).
    started: Instant,
}

/// A running simulation service. Dropping it without
/// [`Server::shutdown_and_wait`] aborts ungracefully; call it.
pub struct Server {
    state: Arc<ServerState>,
    local_addr: std::net::SocketAddr,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    sim_threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start all threads. Fails only on bind/eventfd errors.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let cache = ResultCache::shared(cfg.cache_budget);
        let mut runner = Runner::with_cache(1, Arc::clone(&cache));
        if let Some(dir) = &cfg.cache_dir {
            // A broken cache dir must not stop the service from coming up;
            // it just serves cold (and says so once).
            match crate::persist::DiskTier::shared(std::path::Path::new(dir)) {
                Ok(tier) => runner.set_tier(tier),
                Err(e) => eprintln!(
                    "warning: cache-dir {dir} unavailable ({e}); serving without a durable tier"
                ),
            }
        }
        let state = Arc::new(ServerState {
            runner,
            queue: BoundedQueue::new(cfg.queue_capacity),
            metrics: Metrics::default(),
            cache,
            completions: CompletionQueue::new()?,
            draining: AtomicBool::new(false),
            quiesce: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            pipeline_depth: AtomicUsize::new(0),
            inflight_jobs: AtomicUsize::new(0),
            active_fuzz: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            memo: Mutex::new(HashMap::new()),
            started: Instant::now(),
            cfg,
        });

        let mut sim_threads = Vec::new();
        for i in 0..state.cfg.sim_workers.max(1) {
            let state = Arc::clone(&state);
            sim_threads.push(
                std::thread::Builder::new()
                    .name(format!("sim-worker-{i}"))
                    .spawn(move || sim_worker(&state))
                    .expect("spawn sim worker"),
            );
        }
        let loop_state = Arc::clone(&state);
        let loop_thread = std::thread::Builder::new()
            .name("event-loop".to_string())
            .spawn(move || run_event_loop(listener, loop_state))
            .expect("spawn event loop");

        Ok(Server {
            state,
            local_addr,
            loop_thread: Some(loop_thread),
            sim_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Whether a shutdown was requested (SIGINT path or `POST
    /// /v1/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// The event loop's wake eventfd (registered with the signal handler
    /// by the serve daemon).
    pub(crate) fn wake_fd(&self) -> std::os::fd::RawFd {
        self.state.completions.wake_fd()
    }

    /// Graceful shutdown: stop admissions, quiesce the event loop (every
    /// admitted job and in-flight stream completes, idle keep-alive
    /// sockets close), then close the queue and join all threads.
    pub fn shutdown_and_wait(mut self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.quiesce.store(true, Ordering::SeqCst);
        self.state.completions.wake_now();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        // Detached fuzz campaigns whose connections are already gone.
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.state.active_fuzz.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.queue.close();
        for t in self.sim_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Sim workers: pull admitted jobs until the queue closes and drains,
/// route each result to its sink, and post completions to the loop.
fn sim_worker(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        state.inflight_jobs.fetch_add(1, Ordering::SeqCst);
        let (outcome, cached) = state.runner.run_one(&job.spec);
        state.inflight_jobs.fetch_sub(1, Ordering::SeqCst);
        match job.sink {
            Sink::Run {
                token,
                app,
                lease,
                body_key,
                started,
            } => {
                let response = match outcome {
                    Ok(report) => {
                        state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
                        if !cached {
                            state.metrics.sim.add(&report.stats);
                        }
                        if let Some(key) = body_key {
                            let warm = wire::run_response_json(&app, &report, true, None).encode();
                            memo_store(state, key, warm.into_bytes());
                        }
                        Response::json(
                            200,
                            wire::run_response_json(&app, &report, cached, lease).encode(),
                        )
                    }
                    Err(RunError::Panicked(msg)) => {
                        state.metrics.jobs_panicked.fetch_add(1, Ordering::Relaxed);
                        Response::json(
                            500,
                            wire::error_json(&format!("simulation panicked: {msg}")),
                        )
                    }
                    Err(e) => {
                        state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                        Response::json(422, wire::error_json(&e.to_string()))
                    }
                };
                state.metrics.run_latency.observe(started.elapsed());
                state.metrics.record_request("/v1/run", response.status);
                state.completions.post(Completion::Respond(token, response));
            }
            Sink::Sweep { task, es } => sweep_step(state, &task, es, outcome, cached),
        }
    }
}

fn memo_probe(state: &ServerState, key: &[u8]) -> Option<Vec<u8>> {
    state.memo.lock().unwrap().get(key).cloned()
}

fn memo_store(state: &ServerState, key: Vec<u8>, value: Vec<u8>) {
    let mut memo = state.memo.lock().unwrap();
    if memo.len() >= MEMO_MAX_ENTRIES {
        memo.clear();
    }
    memo.insert(key, value);
}

/// Stable route label for metrics (bounded cardinality).
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/workloads" => "/v1/workloads",
        "/v1/run" => "/v1/run",
        "/v1/sweep" => "/v1/sweep",
        "/v1/fuzz" => "/v1/fuzz",
        "/v1/shutdown" => "/v1/shutdown",
        _ => "other",
    }
}

/// How the event loop should treat one parsed request.
pub(crate) enum RequestAction {
    /// Answer now (the slot becomes `Ready` immediately).
    Respond(Response),
    /// A completion (or stream) will arrive for this slot's token later.
    Pending,
}

/// Route one request. Called on the event-loop thread, so everything here
/// must be fast: job routes only validate + enqueue; cheap routes answer
/// from atomics. Metrics for immediate responses are recorded here;
/// pending responses are recorded where they complete.
pub(crate) fn dispatch_request(
    state: &Arc<ServerState>,
    request: &Request,
    token: SlotToken,
    peer: IpAddr,
    fair: &mut TokenBuckets,
) -> RequestAction {
    let route = route_label(&request.path);
    let started = Instant::now();
    let action = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => RequestAction::Respond(healthz(state)),
        ("GET", "/metrics") => RequestAction::Respond(metrics(state)),
        ("GET", "/v1/workloads") => {
            RequestAction::Respond(Response::json(200, wire::workloads_json().encode()))
        }
        ("POST", "/v1/run") => run_endpoint(request, token, peer, fair, state),
        ("POST", "/v1/sweep") => sweep_endpoint(request, token, peer, fair, state),
        ("POST", "/v1/fuzz") => fuzz_endpoint(request, token, peer, fair, state),
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            RequestAction::Respond(Response::json(200, r#"{"status":"draining"}"#))
        }
        ("GET" | "POST", _) => {
            RequestAction::Respond(Response::json(404, wire::error_json("no such route")))
        }
        _ => RequestAction::Respond(Response::json(405, wire::error_json("method not allowed"))),
    };
    if let RequestAction::Respond(resp) = &action {
        if route == "/v1/run" {
            state.metrics.run_latency.observe(started.elapsed());
        }
        state.metrics.record_request(route, resp.status);
    }
    action
}

/// Readiness probe: everything a coordinator needs to rank this worker,
/// from cheap atomic loads only (the plain-200 fast path stays fast —
/// no simulation state is touched and nothing blocks).
fn healthz(state: &ServerState) -> Response {
    let draining = state.draining.load(Ordering::SeqCst);
    let body = Json::Obj(vec![
        (
            "status".into(),
            Json::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        ("draining".into(), Json::Bool(draining)),
        ("queue_depth".into(), Json::U64(state.queue.len() as u64)),
        (
            "queue_capacity".into(),
            Json::U64(state.queue.capacity() as u64),
        ),
        (
            "inflight_jobs".into(),
            Json::U64(state.inflight_jobs.load(Ordering::SeqCst) as u64),
        ),
        (
            "active_connections".into(),
            Json::U64(state.active_connections.load(Ordering::SeqCst) as u64),
        ),
        (
            "pipeline_depth".into(),
            Json::U64(state.pipeline_depth.load(Ordering::SeqCst) as u64),
        ),
        (
            "throttled_total".into(),
            Json::U64(state.metrics.throttled.load(Ordering::Relaxed)),
        ),
        (
            "streamed_rows_total".into(),
            Json::U64(state.metrics.streamed_rows.load(Ordering::Relaxed)),
        ),
        ("cache_bytes".into(), Json::U64(state.cache.bytes() as u64)),
        (
            "cache_entries".into(),
            Json::U64(state.cache.entries() as u64),
        ),
        (
            "uptime_seconds".into(),
            Json::U64(state.started.elapsed().as_secs()),
        ),
        (
            "workers".into(),
            Json::U64(state.cfg.sim_workers.max(1) as u64),
        ),
    ]);
    Response::json(200, body.encode())
}

fn metrics(state: &ServerState) -> Response {
    let gauges = ServiceGauges {
        queue_depth: state.queue.len() as u64,
        queue_capacity: state.queue.capacity() as u64,
        inflight_jobs: state.inflight_jobs.load(Ordering::SeqCst) as u64,
        active_connections: state.active_connections.load(Ordering::SeqCst) as u64,
        pipeline_depth: state.pipeline_depth.load(Ordering::SeqCst) as u64,
        cache_hits: state.cache.hits(),
        cache_misses: state.cache.misses(),
        cache_evictions: state.cache.evictions(),
        cache_bytes: state.cache.bytes() as u64,
        cache_entries: state.cache.entries() as u64,
        durable_degradations: regmutex_durable::degradation_count(),
    };
    Response::text(200, state.metrics.render(&gauges))
}

/// Decode a JSON body, or answer 400.
fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = core::str::from_utf8(&request.body)
        .map_err(|_| Response::json(400, wire::error_json("body is not valid UTF-8")))?;
    if text.trim().is_empty() {
        return Err(Response::json(400, wire::error_json("empty body")));
    }
    json::parse(text)
        .map_err(|e| Response::json(400, wire::error_json(&format!("invalid JSON: {e}"))))
}

/// Build the [`JobSpec`] a [`RunRequest`] runs as, under a server's
/// `sm_workers` setting and cycle cap. Public so a coordinator can compute
/// the *same* content fingerprint the worker will key its cache with —
/// consistent-hash routing by that fingerprint shards the workers' LRU
/// caches cleanly. With the defaults (`sm_workers = 0`, no server cap) the
/// spec is identical to the one the local harness builds for the same job.
pub fn spec_for_request(req: &RunRequest, sm_workers: u32, server_budget: Option<u64>) -> JobSpec {
    let w = suite::by_name(&req.app).expect("validated by parse_run_request");
    let mut cfg = if req.half_rf {
        GpuConfig::gtx480_half_rf()
    } else {
        GpuConfig::gtx480()
    };
    cfg.sm_workers = sm_workers;
    let launch = LaunchConfig::new(req.ctas.unwrap_or(w.grid_ctas));
    let mut spec = JobSpec::new(
        format!("{}/{}", w.name, req.technique),
        &w.kernel,
        &cfg,
        launch,
        req.technique,
    )
    .with_options(CompileOptions {
        force_es: req.force_es,
        force_apply: req.force_es.is_some(),
    });
    let budget = match (req.cycle_budget, server_budget) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    if let Some(b) = budget {
        spec = spec.with_cycle_budget(b);
    }
    spec
}

/// Build the job spec for one run request under this server's config.
fn build_spec(req: &RunRequest, state: &ServerState) -> JobSpec {
    spec_for_request(req, state.cfg.sm_workers, state.cfg.cycle_budget)
}

/// The 503 every job route answers while draining.
fn draining_response() -> Response {
    Response::json(503, wire::error_json("server is draining")).with_header("retry-after", "1")
}

/// Gate a job-bearing request through the per-client token bucket.
fn throttle(state: &ServerState, peer: IpAddr, fair: &mut TokenBuckets) -> Result<(), Response> {
    match fair.try_take(peer, Instant::now()) {
        Ok(()) => Ok(()),
        Err(retry_secs) => {
            state.metrics.throttled.fetch_add(1, Ordering::Relaxed);
            Err(
                Response::json(429, wire::error_json("client request rate limited"))
                    .with_header("retry-after", retry_secs.to_string()),
            )
        }
    }
}

/// Map a queue push result onto the backpressure responses.
fn admit(state: &ServerState, job: QueuedJob) -> Result<(), Response> {
    match state.queue.try_push(job) {
        Ok(()) => Ok(()),
        Err(PushError::Full(_)) => {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            state.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            Err(
                Response::json(429, wire::error_json("job queue is full; retry shortly"))
                    .with_header("retry-after", "1"),
            )
        }
        Err(PushError::Closed(_)) => Err(Response::json(
            503,
            wire::error_json("server is shutting down"),
        )
        .with_header("retry-after", "1")),
    }
}

fn run_endpoint(
    request: &Request,
    token: SlotToken,
    peer: IpAddr,
    fair: &mut TokenBuckets,
    state: &ServerState,
) -> RequestAction {
    if state.draining.load(Ordering::SeqCst) {
        return RequestAction::Respond(draining_response());
    }
    if let Err(resp) = throttle(state, peer, fair) {
        return RequestAction::Respond(resp);
    }
    // Warm fast path: an identical body already has a stored response —
    // serve it without parsing, queueing, or a worker. Bodies are only
    // memoized when lease-less, and adding a lease changes the bytes, so
    // a byte-identical probe cannot alias a leased request.
    if let Some(bytes) = memo_probe(state, &request.body) {
        state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
        state.cache.note_hit();
        return RequestAction::Respond(Response::json(200, bytes));
    }
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(resp) => return RequestAction::Respond(resp),
    };
    let run = match wire::parse_run_request(&body) {
        Ok(r) => r,
        Err(e) => return RequestAction::Respond(Response::json(400, wire::error_json(&e.0))),
    };
    let spec = build_spec(&run, state);
    let job = QueuedJob {
        spec,
        sink: Sink::Run {
            token,
            body_key: run.lease.is_none().then(|| request.body.clone()),
            app: run.app,
            lease: run.lease,
            started: Instant::now(),
        },
    };
    match admit(state, job) {
        Ok(()) => RequestAction::Pending,
        Err(resp) => RequestAction::Respond(resp),
    }
}

/// Default `|Es|` points for `/v1/sweep` (the Fig 10 sweep).
const SWEEP_ES: [u16; 6] = [2, 4, 6, 8, 10, 12];

fn sweep_endpoint(
    request: &Request,
    token: SlotToken,
    peer: IpAddr,
    fair: &mut TokenBuckets,
    state: &ServerState,
) -> RequestAction {
    if state.draining.load(Ordering::SeqCst) {
        return RequestAction::Respond(draining_response());
    }
    if let Err(resp) = throttle(state, peer, fair) {
        return RequestAction::Respond(resp);
    }
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(resp) => return RequestAction::Respond(resp),
    };
    // Reuse the run-request parser for the shared fields; `es` is ours.
    let es_points: Vec<u16> = match body.get("es") {
        None | Some(Json::Null) => SWEEP_ES.to_vec(),
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item.as_u64().and_then(|n| u16::try_from(n).ok()) {
                    Some(v) if v > 0 => out.push(v),
                    _ => {
                        return RequestAction::Respond(Response::json(
                            400,
                            wire::error_json("'es' entries must be positive integers"),
                        ))
                    }
                }
            }
            out
        }
        Some(_) => {
            return RequestAction::Respond(Response::json(
                400,
                wire::error_json("'es' must be an array"),
            ))
        }
    };
    if es_points.len() > 64 {
        return RequestAction::Respond(Response::json(
            400,
            wire::error_json("'es' is limited to 64 points"),
        ));
    }
    // Rows stream as chunks by default; `"stream": false` buffers the
    // identical bytes into one response.
    let stream = body.get("stream").and_then(Json::as_bool).unwrap_or(true);
    let mut base_body = match body {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "es" && k != "technique" && k != "force_es" && k != "stream")
                .collect(),
        ),
        _ => {
            return RequestAction::Respond(Response::json(
                400,
                wire::error_json("body must be a JSON object"),
            ))
        }
    };
    // The sweep always runs baseline + forced-|Es| RegMutex.
    if let Json::Obj(pairs) = &mut base_body {
        pairs.push(("technique".into(), Json::Str("baseline".into())));
    }
    let base_req = match wire::parse_run_request(&base_body) {
        Ok(r) => r,
        Err(e) => return RequestAction::Respond(Response::json(400, wire::error_json(&e.0))),
    };

    // Baseline first: everything in the response is relative to it. Each
    // completion submits the next point, so one sweep holds at most one
    // queue slot at a time.
    let spec = build_spec(&base_req, state);
    let task = Arc::new(Mutex::new(SweepTask {
        token,
        base_req,
        es_points,
        next: 0,
        stream,
        base_report: None,
        buf: String::new(),
        rows_emitted: 0,
    }));
    let job = QueuedJob {
        spec,
        sink: Sink::Sweep { task, es: None },
    };
    match admit(state, job) {
        Ok(()) => RequestAction::Pending,
        Err(resp) => RequestAction::Respond(resp),
    }
}

/// `{"app":...,"baseline":{...},"rows":[` — the stream prefix. Rows and
/// the `]}` footer concatenate to exactly the buffered (and pre-rewrite)
/// encoding.
fn sweep_prefix(app: &str, base: &RunReport) -> String {
    let head = Json::Obj(vec![
        ("app".into(), Json::Str(app.to_string())),
        (
            "baseline".into(),
            Json::Obj(vec![
                ("cycles".into(), Json::U64(base.stats.cycles)),
                (
                    "checksum".into(),
                    Json::Str(format!("{:#018x}", base.stats.checksum)),
                ),
            ]),
        ),
    ]);
    let mut s = head.encode();
    s.pop(); // strip the closing '}' to splice in the rows array
    s.push_str(",\"rows\":[");
    s
}

/// Handle one finished sweep job (baseline or row) and queue the next.
fn sweep_step(
    state: &Arc<ServerState>,
    task: &Arc<Mutex<SweepTask>>,
    es: Option<u16>,
    outcome: CachedResult,
    cached: bool,
) {
    let mut t = task.lock().unwrap();
    match es {
        None => {
            // Baseline finished.
            let report = match outcome {
                Ok(r) => {
                    state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    if !cached {
                        state.metrics.sim.add(&r.stats);
                    }
                    r
                }
                Err(e) => {
                    state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    state.metrics.record_request("/v1/sweep", 422);
                    state.completions.post(Completion::Respond(
                        t.token,
                        Response::json(422, wire::error_json(&format!("baseline failed: {e}"))),
                    ));
                    return;
                }
            };
            let prefix = sweep_prefix(&t.base_req.app, &report);
            t.base_report = Some(report);
            if t.stream {
                state
                    .completions
                    .post(Completion::StreamStart(t.token, 200, "application/json"));
                state
                    .completions
                    .post(Completion::StreamChunk(t.token, prefix.into_bytes()));
            } else {
                t.buf.push_str(&prefix);
            }
        }
        Some(es) => {
            let row = match outcome {
                Ok(report) => {
                    state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    if !cached {
                        state.metrics.sim.add(&report.stats);
                    }
                    let base = t.base_report.as_ref().expect("rows run after baseline");
                    let reduction = regmutex::cycle_reduction_percent(base, &report);
                    Json::Obj(vec![
                        ("es".into(), Json::U64(u64::from(es))),
                        ("cached".into(), Json::Bool(cached)),
                        ("cycles".into(), Json::U64(report.stats.cycles)),
                        ("reduction_percent".into(), Json::F64(reduction)),
                        (
                            "occupancy_percent".into(),
                            Json::U64(u64::from(report.occupancy_percent())),
                        ),
                        (
                            "acquire_success_rate".into(),
                            Json::F64(report.acquire_success_rate()),
                        ),
                        (
                            "checksum".into(),
                            Json::Str(format!("{:#018x}", report.stats.checksum)),
                        ),
                    ])
                }
                Err(e) => {
                    state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    Json::Obj(vec![
                        ("es".into(), Json::U64(u64::from(es))),
                        ("error".into(), Json::Str(e.to_string())),
                    ])
                }
            };
            let mut chunk = String::new();
            if t.rows_emitted > 0 {
                chunk.push(',');
            }
            chunk.push_str(&row.encode());
            t.rows_emitted += 1;
            if t.stream {
                state.metrics.streamed_rows.fetch_add(1, Ordering::Relaxed);
                state
                    .completions
                    .post(Completion::StreamChunk(t.token, chunk.into_bytes()));
            } else {
                t.buf.push_str(&chunk);
            }
        }
    }

    // Submit the next point, or finish. `push_overflow` ignores the
    // capacity bound and the draining flag: this is the continuation of
    // already-admitted work, which a drain promises to complete.
    if t.next < t.es_points.len() {
        let es = t.es_points[t.next];
        t.next += 1;
        let mut req = t.base_req.clone();
        req.technique = Technique::RegMutex;
        req.force_es = Some(es);
        let spec = spec_for_request(&req, state.cfg.sm_workers, state.cfg.cycle_budget);
        let job = QueuedJob {
            spec,
            sink: Sink::Sweep {
                task: Arc::clone(task),
                es: Some(es),
            },
        };
        if state.queue.push_overflow(job).is_ok() {
            return;
        }
        // Queue closed: fall through and finish with the rows we have.
    }
    state.metrics.record_request("/v1/sweep", 200);
    if t.stream {
        state
            .completions
            .post(Completion::StreamChunk(t.token, b"]}".to_vec()));
        state.completions.post(Completion::StreamEnd(t.token));
    } else {
        let body = format!("{}]}}", t.buf);
        state
            .completions
            .post(Completion::Respond(t.token, Response::json(200, body)));
    }
}

/// Upper bound on kernels per `/v1/fuzz` request (shard further instead).
const FUZZ_MAX_COUNT: u64 = 100_000;

/// Kernels per sub-batch in `"progress": true` streaming mode.
const FUZZ_PROGRESS_BATCH: u64 = 256;

/// Decode a u64 field that may arrive as a JSON number or a hex string
/// (`"0x..."`), since campaign seeds use the full u64 range.
fn parse_u64_field(v: &Json) -> Option<u64> {
    if let Some(n) = v.as_u64() {
        return Some(n);
    }
    let s = v.as_str()?;
    let s = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(s, 16).ok()
}

/// `POST /v1/fuzz`: run one shard of a fuzzing campaign on this worker.
///
/// Body: `{"seed": <u64|hex string>, "start": <u64>, "count": <u64>,
/// "cycle_budget"?: <u64>, "minimize"?: <bool>, "max_divergences"?: <u64>,
/// "progress"?: <bool>}`. Workers regenerate every kernel locally from
/// `mix(seed, index)` over `start..start+count`, so the coordinator ships
/// a few integers instead of kernels, and disjoint shards of one seed
/// merged in index order are byte-identical to a local run of the whole
/// range.
///
/// The shard runs on a detached thread against the shared runner/cache
/// (fuzz jobs are batch work; the bounded sim queue stays free for
/// interactive `/v1/run` traffic). With `"progress": true` the response
/// is NDJSON over chunked encoding: one `{"event":"progress",...}` line
/// per sub-batch, then the final merged report as the last line.
fn fuzz_endpoint(
    request: &Request,
    token: SlotToken,
    peer: IpAddr,
    fair: &mut TokenBuckets,
    state: &Arc<ServerState>,
) -> RequestAction {
    if state.draining.load(Ordering::SeqCst) {
        return RequestAction::Respond(draining_response());
    }
    if let Err(resp) = throttle(state, peer, fair) {
        return RequestAction::Respond(resp);
    }
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(resp) => return RequestAction::Respond(resp),
    };
    let seed = match body.get("seed").and_then(parse_u64_field) {
        Some(s) => s,
        None => {
            return RequestAction::Respond(Response::json(
                400,
                wire::error_json("'seed' (u64 or hex string) is required"),
            ))
        }
    };
    let count = match body.get("count").and_then(parse_u64_field) {
        Some(c) if (1..=FUZZ_MAX_COUNT).contains(&c) => c,
        Some(_) => {
            return RequestAction::Respond(Response::json(
                400,
                wire::error_json(&format!("'count' must be in 1..={FUZZ_MAX_COUNT}")),
            ))
        }
        None => {
            return RequestAction::Respond(Response::json(
                400,
                wire::error_json("'count' (u64) is required"),
            ))
        }
    };
    let start = match body.get("start") {
        None => 0,
        Some(v) => match parse_u64_field(v) {
            Some(s) => s,
            None => {
                return RequestAction::Respond(Response::json(
                    400,
                    wire::error_json("'start' must be a u64"),
                ))
            }
        },
    };
    let mut oracle = regmutex_fuzz::OracleConfig {
        sm_workers: state.cfg.sm_workers,
        ..regmutex_fuzz::OracleConfig::default()
    };
    if let Some(b) = body.get("cycle_budget").and_then(parse_u64_field) {
        oracle.cycle_budget = b;
    }
    let cfg = CampaignConfig {
        seed,
        start,
        iters: count,
        oracle,
        minimize: body.get("minimize").and_then(Json::as_bool).unwrap_or(true),
        max_divergences: body
            .get("max_divergences")
            .and_then(parse_u64_field)
            .unwrap_or(5),
        ..CampaignConfig::default()
    };
    let progress = body
        .get("progress")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    state.active_fuzz.fetch_add(1, Ordering::SeqCst);
    let thread_state = Arc::clone(state);
    let spawned = std::thread::Builder::new()
        .name("fuzz-campaign".to_string())
        .spawn(move || {
            run_fuzz_job(&thread_state, token, &cfg, progress);
            thread_state.active_fuzz.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        state.active_fuzz.fetch_sub(1, Ordering::SeqCst);
        return RequestAction::Respond(Response::json(
            500,
            wire::error_json("could not spawn campaign thread"),
        ));
    }
    RequestAction::Pending
}

fn merge_stats(into: &mut CampaignStats, from: &CampaignStats) {
    into.kernels += from.kernels;
    into.runs += from.runs;
    into.agreements += from.agreements;
    into.divergences += from.divergences;
    into.escalations += from.escalations;
    into.minimize_steps += from.minimize_steps;
    into.minimize_tests += from.minimize_tests;
    into.cache_hits += from.cache_hits;
    into.cache_misses += from.cache_misses;
    into.elapsed += from.elapsed;
}

/// Run one campaign shard on a detached thread and post its response.
fn run_fuzz_job(state: &Arc<ServerState>, token: SlotToken, cfg: &CampaignConfig, progress: bool) {
    if !progress {
        let report = regmutex_fuzz::run_campaign(cfg, &state.runner);
        state.metrics.record_request("/v1/fuzz", 200);
        state.completions.post(Completion::Respond(
            token,
            Response::json(200, report.to_json()),
        ));
        return;
    }

    // Streaming mode: run in sub-batches, emitting an NDJSON progress line
    // after each, then the merged report (identical in content to the
    // buffered response for the same shard) as the final line.
    state
        .completions
        .post(Completion::StreamStart(token, 200, "application/x-ndjson"));
    let mut merged = FuzzReport {
        seed: cfg.seed,
        start: cfg.start,
        processed: 0,
        stats: CampaignStats::default(),
        divergences: Vec::new(),
    };
    while merged.processed < cfg.iters {
        let mut sub = cfg.clone();
        sub.start = cfg.start + merged.processed;
        sub.iters = FUZZ_PROGRESS_BATCH.min(cfg.iters - merged.processed);
        sub.max_divergences = cfg.max_divergences - merged.stats.divergences;
        let asked = sub.iters;
        let r = regmutex_fuzz::run_campaign(&sub, &state.runner);
        merged.processed += r.processed;
        merge_stats(&mut merged.stats, &r.stats);
        merged.divergences.extend(r.divergences);
        let line = format!(
            "{{\"event\":\"progress\",\"processed\":{},\"total\":{},\"divergences\":{}}}\n",
            merged.processed, cfg.iters, merged.stats.divergences
        );
        state.metrics.streamed_rows.fetch_add(1, Ordering::Relaxed);
        state
            .completions
            .post(Completion::StreamChunk(token, line.into_bytes()));
        // A short batch means the campaign stopped itself (divergence cap).
        if r.processed < asked || merged.stats.divergences >= cfg.max_divergences {
            break;
        }
    }
    let mut last = merged.to_json();
    last.push('\n');
    state.metrics.record_request("/v1/fuzz", 200);
    state
        .completions
        .post(Completion::StreamChunk(token, last.into_bytes()));
    state.completions.post(Completion::StreamEnd(token));
}

/// Run a server until SIGINT/SIGTERM or `POST /v1/shutdown`, then drain
/// gracefully. This is the body of `regmutex-cli serve`.
pub fn serve_until_shutdown(mut cfg: ServerConfig) -> std::io::Result<()> {
    crate::signal::install();
    cfg.drain_on_signal = true;
    let server = Server::start(cfg)?;
    // Let the signal handler wake the epoll loop directly (write(2) on an
    // eventfd is async-signal-safe), so drains start immediately instead
    // of on the next tick.
    crate::signal::set_wake_fd(server.wake_fd());
    println!(
        "regmutex-server listening on http://{} ({} sim workers, queue {})",
        server.local_addr(),
        server.state.cfg.sim_workers.max(1),
        server.state.cfg.queue_capacity
    );
    while !crate::signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    println!("regmutex-server: draining in-flight work ...");
    server.shutdown_and_wait();
    println!("regmutex-server: shutdown complete");
    Ok(())
}
