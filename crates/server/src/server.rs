//! The simulation service daemon.
//!
//! Topology (all std threads, no async runtime):
//!
//! ```text
//!  accept thread ──► connection threads (≤ max_connections, one request
//!        │                 each, Connection: close)
//!        │                   │  parse HTTP + JSON, build JobSpec
//!        │                   ▼
//!        │            BoundedQueue<QueuedJob>   ── full → 429 + Retry-After
//!        │                   │
//!        │                   ▼
//!        │            sim worker threads ──► Runner::run_one
//!        │                                   (shared LRU ResultCache)
//!        └── shutdown: stop accepting → drain connections → close queue
//!            → join workers (admitted jobs always finish)
//! ```
//!
//! Every route answers JSON except `/metrics` (Prometheus text). Requests
//! that fail to parse get structured 400/408/413 bodies — hostile bytes
//! never panic a worker or hang a connection (the HTTP layer enforces
//! head/body caps and socket read timeouts).

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use regmutex::{RunError, Technique};
use regmutex_bench::runner::default_jobs;
use regmutex_bench::{CachedResult, JobSpec, ResultCache, Runner, DEFAULT_CACHE_BUDGET};
use regmutex_compiler::CompileOptions;
use regmutex_sim::{GpuConfig, LaunchConfig};
use regmutex_workloads::suite;

use crate::http::{self, Limits, Request, Response};
use crate::json::{self, Json};
use crate::metrics::{Metrics, ServiceGauges};
use crate::queue::{BoundedQueue, PushError};
use crate::wire::{self, RunRequest};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Simulation worker threads draining the job queue.
    pub sim_workers: usize,
    /// Bounded job-queue capacity (beyond it: 429).
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_budget: usize,
    /// Cycle cap applied to every job (min-ed with per-request budgets);
    /// `None` leaves only the config watchdog.
    pub cycle_budget: Option<u64>,
    /// HTTP read limits and timeouts.
    pub limits: Limits,
    /// Maximum concurrent connections (beyond it: 503).
    pub max_connections: usize,
    /// Device-loop worker threads per job (`GpuConfig::sm_workers`): 0 lets
    /// each job resolve `REGMUTEX_SM_WORKERS` (default serial). Enters the
    /// job fingerprint, so runs at different shard counts cache separately —
    /// their reports are bit-identical regardless.
    pub sm_workers: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8077".to_string(),
            sim_workers: default_jobs(),
            queue_capacity: 64,
            cache_budget: DEFAULT_CACHE_BUDGET,
            cycle_budget: None,
            limits: Limits::default(),
            max_connections: 64,
            sm_workers: 0,
        }
    }
}

/// One admitted job: the spec plus the channel its waiting connection
/// thread blocks on.
struct QueuedJob {
    spec: JobSpec,
    reply: mpsc::Sender<(CachedResult, bool)>,
}

/// State shared by every thread of one server.
struct ServerState {
    cfg: ServerConfig,
    metrics: Metrics,
    cache: Arc<ResultCache>,
    runner: Runner,
    queue: BoundedQueue<QueuedJob>,
    /// Set once shutdown begins: reject new work, report draining.
    draining: AtomicBool,
    /// Set to stop the accept loop.
    stop_accepting: AtomicBool,
    active_connections: AtomicUsize,
    inflight_jobs: AtomicUsize,
    /// Total 429 responses (mirrors metrics, readable without the map lock).
    rejected: AtomicU64,
    /// When the server started (uptime in `/healthz`).
    started: Instant,
}

/// A running simulation service. Dropping it without
/// [`Server::shutdown_and_wait`] aborts ungracefully; call it.
pub struct Server {
    state: Arc<ServerState>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sim_threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start all threads. Fails only on bind errors.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let cache = ResultCache::shared(cfg.cache_budget);
        let state = Arc::new(ServerState {
            runner: Runner::with_cache(1, Arc::clone(&cache)),
            queue: BoundedQueue::new(cfg.queue_capacity),
            metrics: Metrics::default(),
            cache,
            draining: AtomicBool::new(false),
            stop_accepting: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            inflight_jobs: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            started: Instant::now(),
            cfg,
        });

        let mut sim_threads = Vec::new();
        for i in 0..state.cfg.sim_workers.max(1) {
            let state = Arc::clone(&state);
            sim_threads.push(
                std::thread::Builder::new()
                    .name(format!("sim-worker-{i}"))
                    .spawn(move || sim_worker(&state))
                    .expect("spawn sim worker"),
            );
        }
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("accept".to_string())
            .spawn(move || accept_loop(listener, &accept_state))
            .expect("spawn accept thread");

        Ok(Server {
            state,
            local_addr,
            accept_thread: Some(accept_thread),
            sim_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Whether a shutdown was requested (SIGINT path or `POST
    /// /v1/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop admissions, drain connections and the job
    /// queue (every admitted job completes), join all threads.
    pub fn shutdown_and_wait(mut self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.stop_accepting.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Connections finish their one request each (reads are
        // timeout-bounded, jobs complete); don't wait forever on a pathological
        // peer.
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.state.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.queue.close();
        for t in self.sim_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Sim workers: pull admitted jobs until the queue closes and drains.
fn sim_worker(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        state.inflight_jobs.fetch_add(1, Ordering::SeqCst);
        let outcome = state.runner.run_one(&job.spec);
        state.inflight_jobs.fetch_sub(1, Ordering::SeqCst);
        // A send failure means the connection thread is gone (it never
        // gives up by itself); the result is still cached for the future.
        let _ = job.reply.send(outcome);
    }
}

/// Accept loop: non-blocking accept + 1 ms idle sleep, so shutdown is
/// noticed promptly without signals needing to interrupt a blocking call.
fn accept_loop(listener: TcpListener, state: &Arc<ServerState>) {
    loop {
        if state.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.active_connections.load(Ordering::SeqCst) >= state.cfg.max_connections {
                    overloaded(stream, state);
                    continue;
                }
                state.active_connections.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(state);
                let spawned =
                    std::thread::Builder::new()
                        .name("conn".to_string())
                        .spawn(move || {
                            let _guard = ConnGuard(&conn_state);
                            handle_connection(stream, &conn_state);
                        });
                if spawned.is_err() {
                    // Could not spawn: the guard inside never ran, undo.
                    state.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

struct ConnGuard<'a>(&'a ServerState);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reject a connection over the concurrency cap without spawning.
fn overloaded(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let resp = Response::json(503, wire::error_json("server at connection capacity"))
        .with_header("retry-after", "1");
    let _ = http::write_response(&mut stream, &resp);
    state.metrics.record_request("overload", 503);
}

/// Stable route label for metrics (bounded cardinality).
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/workloads" => "/v1/workloads",
        "/v1/run" => "/v1/run",
        "/v1/sweep" => "/v1/sweep",
        "/v1/fuzz" => "/v1/fuzz",
        "/v1/shutdown" => "/v1/shutdown",
        _ => "other",
    }
}

/// One connection: read one request, answer it, close.
fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let request = match http::read_request(&mut stream, &state.cfg.limits) {
        Ok(Some(req)) => req,
        Ok(None) => return, // peer closed without sending anything
        Err(e) => {
            let status = e.status();
            if status != 0 {
                let resp = Response::json(status, wire::error_json(&e.detail()));
                let _ = http::write_response(&mut stream, &resp);
                state.metrics.record_request("unparsed", status);
            }
            return;
        }
    };
    let route = route_label(&request.path);
    let started = Instant::now();
    let response = dispatch(&request, state);
    if route == "/v1/run" {
        state.metrics.run_latency.observe(started.elapsed());
    }
    state.metrics.record_request(route, response.status);
    let _ = http::write_response(&mut stream, &response);
}

fn dispatch(request: &Request, state: &ServerState) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/v1/workloads") => Response::json(200, wire::workloads_json().encode()),
        ("POST", "/v1/run") => run_endpoint(request, state),
        ("POST", "/v1/sweep") => sweep_endpoint(request, state),
        ("POST", "/v1/fuzz") => fuzz_endpoint(request, state),
        ("POST", "/v1/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            Response::json(200, r#"{"status":"draining"}"#)
        }
        ("GET" | "POST", _) => Response::json(404, wire::error_json("no such route")),
        _ => Response::json(405, wire::error_json("method not allowed")),
    }
}

/// Readiness probe: everything a coordinator needs to rank this worker,
/// from cheap atomic loads only (the plain-200 fast path stays fast —
/// no simulation state is touched and nothing blocks).
fn healthz(state: &ServerState) -> Response {
    let draining = state.draining.load(Ordering::SeqCst);
    let body = Json::Obj(vec![
        (
            "status".into(),
            Json::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        ("draining".into(), Json::Bool(draining)),
        ("queue_depth".into(), Json::U64(state.queue.len() as u64)),
        (
            "queue_capacity".into(),
            Json::U64(state.queue.capacity() as u64),
        ),
        (
            "inflight_jobs".into(),
            Json::U64(state.inflight_jobs.load(Ordering::SeqCst) as u64),
        ),
        (
            "active_connections".into(),
            Json::U64(state.active_connections.load(Ordering::SeqCst) as u64),
        ),
        ("cache_bytes".into(), Json::U64(state.cache.bytes() as u64)),
        (
            "cache_entries".into(),
            Json::U64(state.cache.entries() as u64),
        ),
        (
            "uptime_seconds".into(),
            Json::U64(state.started.elapsed().as_secs()),
        ),
        (
            "workers".into(),
            Json::U64(state.cfg.sim_workers.max(1) as u64),
        ),
    ]);
    Response::json(200, body.encode())
}

fn metrics(state: &ServerState) -> Response {
    let gauges = ServiceGauges {
        queue_depth: state.queue.len() as u64,
        queue_capacity: state.queue.capacity() as u64,
        inflight_jobs: state.inflight_jobs.load(Ordering::SeqCst) as u64,
        active_connections: state.active_connections.load(Ordering::SeqCst) as u64,
        cache_hits: state.cache.hits(),
        cache_misses: state.cache.misses(),
        cache_evictions: state.cache.evictions(),
        cache_bytes: state.cache.bytes() as u64,
        cache_entries: state.cache.entries() as u64,
    };
    Response::text(200, state.metrics.render(&gauges))
}

/// Decode a JSON body, or answer 400.
fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = core::str::from_utf8(&request.body)
        .map_err(|_| Response::json(400, wire::error_json("body is not valid UTF-8")))?;
    if text.trim().is_empty() {
        return Err(Response::json(400, wire::error_json("empty body")));
    }
    json::parse(text)
        .map_err(|e| Response::json(400, wire::error_json(&format!("invalid JSON: {e}"))))
}

/// Build the [`JobSpec`] a [`RunRequest`] runs as, under a server's
/// `sm_workers` setting and cycle cap. Public so a coordinator can compute
/// the *same* content fingerprint the worker will key its cache with —
/// consistent-hash routing by that fingerprint shards the workers' LRU
/// caches cleanly. With the defaults (`sm_workers = 0`, no server cap) the
/// spec is identical to the one the local harness builds for the same job.
pub fn spec_for_request(req: &RunRequest, sm_workers: u32, server_budget: Option<u64>) -> JobSpec {
    let w = suite::by_name(&req.app).expect("validated by parse_run_request");
    let mut cfg = if req.half_rf {
        GpuConfig::gtx480_half_rf()
    } else {
        GpuConfig::gtx480()
    };
    cfg.sm_workers = sm_workers;
    let launch = LaunchConfig::new(req.ctas.unwrap_or(w.grid_ctas));
    let mut spec = JobSpec::new(
        format!("{}/{}", w.name, req.technique),
        &w.kernel,
        &cfg,
        launch,
        req.technique,
    )
    .with_options(CompileOptions {
        force_es: req.force_es,
        force_apply: req.force_es.is_some(),
    });
    let budget = match (req.cycle_budget, server_budget) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    if let Some(b) = budget {
        spec = spec.with_cycle_budget(b);
    }
    spec
}

/// Build the job spec for one run request under this server's config.
fn build_spec(req: &RunRequest, state: &ServerState) -> JobSpec {
    spec_for_request(req, state.cfg.sm_workers, state.cfg.cycle_budget)
}

/// Outcome of pushing one job through the queue and waiting for it.
enum JobOutcome {
    Done(CachedResult, bool),
    Rejected(Response),
}

/// Admit a job (or refuse with backpressure) and wait for its result.
fn submit_and_wait(spec: JobSpec, state: &ServerState) -> JobOutcome {
    if state.draining.load(Ordering::SeqCst) {
        return JobOutcome::Rejected(
            Response::json(503, wire::error_json("server is draining"))
                .with_header("retry-after", "1"),
        );
    }
    let (reply, result) = mpsc::channel();
    match state.queue.try_push(QueuedJob { spec, reply }) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            state.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return JobOutcome::Rejected(
                Response::json(429, wire::error_json("job queue is full; retry shortly"))
                    .with_header("retry-after", "1"),
            );
        }
        Err(PushError::Closed(_)) => {
            return JobOutcome::Rejected(
                Response::json(503, wire::error_json("server is shutting down"))
                    .with_header("retry-after", "1"),
            );
        }
    }
    // Admitted jobs always complete: workers drain the queue even during
    // shutdown, so this recv cannot hang.
    match result.recv() {
        Ok((outcome, cached)) => JobOutcome::Done(outcome, cached),
        Err(_) => JobOutcome::Rejected(Response::json(
            500,
            wire::error_json("worker dropped the job reply channel"),
        )),
    }
}

/// Classify a finished job into an HTTP response, updating job metrics.
fn job_response(
    app: &str,
    outcome: CachedResult,
    cached: bool,
    lease: Option<u64>,
    state: &ServerState,
) -> Response {
    match outcome {
        Ok(report) => {
            state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
            if !cached {
                state.metrics.sim.add(&report.stats);
            }
            Response::json(
                200,
                wire::run_response_json(app, &report, cached, lease).encode(),
            )
        }
        Err(RunError::Panicked(msg)) => {
            state.metrics.jobs_panicked.fetch_add(1, Ordering::Relaxed);
            Response::json(
                500,
                wire::error_json(&format!("simulation panicked: {msg}")),
            )
        }
        Err(e) => {
            state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            Response::json(422, wire::error_json(&e.to_string()))
        }
    }
}

fn run_endpoint(request: &Request, state: &ServerState) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let run = match wire::parse_run_request(&body) {
        Ok(r) => r,
        Err(e) => return Response::json(400, wire::error_json(&e.0)),
    };
    let spec = build_spec(&run, state);
    match submit_and_wait(spec, state) {
        JobOutcome::Done(outcome, cached) => {
            job_response(&run.app, outcome, cached, run.lease, state)
        }
        JobOutcome::Rejected(resp) => resp,
    }
}

/// Default `|Es|` points for `/v1/sweep` (the Fig 10 sweep).
const SWEEP_ES: [u16; 6] = [2, 4, 6, 8, 10, 12];

fn sweep_endpoint(request: &Request, state: &ServerState) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    // Reuse the run-request parser for the shared fields; `es` is ours.
    let es_points: Vec<u16> = match body.get("es") {
        None | Some(Json::Null) => SWEEP_ES.to_vec(),
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item.as_u64().and_then(|n| u16::try_from(n).ok()) {
                    Some(v) if v > 0 => out.push(v),
                    _ => {
                        return Response::json(
                            400,
                            wire::error_json("'es' entries must be positive integers"),
                        )
                    }
                }
            }
            out
        }
        Some(_) => return Response::json(400, wire::error_json("'es' must be an array")),
    };
    if es_points.len() > 64 {
        return Response::json(400, wire::error_json("'es' is limited to 64 points"));
    }
    let mut base_body = match body {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "es" && k != "technique" && k != "force_es")
                .collect(),
        ),
        _ => return Response::json(400, wire::error_json("body must be a JSON object")),
    };
    // The sweep always runs baseline + forced-|Es| RegMutex.
    if let Json::Obj(pairs) = &mut base_body {
        pairs.push(("technique".into(), Json::Str("baseline".into())));
    }
    let base_req = match wire::parse_run_request(&base_body) {
        Ok(r) => r,
        Err(e) => return Response::json(400, wire::error_json(&e.0)),
    };

    // Baseline first: everything in the response is relative to it.
    let base_report = match submit_and_wait(build_spec(&base_req, state), state) {
        JobOutcome::Rejected(resp) => return resp,
        JobOutcome::Done(outcome, cached) => match outcome {
            Ok(r) => {
                state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
                if !cached {
                    state.metrics.sim.add(&r.stats);
                }
                r
            }
            Err(e) => {
                state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                return Response::json(422, wire::error_json(&format!("baseline failed: {e}")));
            }
        },
    };

    let mut rows = Vec::with_capacity(es_points.len());
    for es in &es_points {
        let mut req = base_req.clone();
        req.technique = Technique::RegMutex;
        req.force_es = Some(*es);
        let row = match submit_and_wait(build_spec(&req, state), state) {
            JobOutcome::Rejected(resp) => return resp,
            JobOutcome::Done(Ok(report), cached) => {
                state.metrics.jobs_ok.fetch_add(1, Ordering::Relaxed);
                if !cached {
                    state.metrics.sim.add(&report.stats);
                }
                let reduction = regmutex::cycle_reduction_percent(&base_report, &report);
                Json::Obj(vec![
                    ("es".into(), Json::U64(u64::from(*es))),
                    ("cached".into(), Json::Bool(cached)),
                    ("cycles".into(), Json::U64(report.stats.cycles)),
                    ("reduction_percent".into(), Json::F64(reduction)),
                    (
                        "occupancy_percent".into(),
                        Json::U64(u64::from(report.occupancy_percent())),
                    ),
                    (
                        "acquire_success_rate".into(),
                        Json::F64(report.acquire_success_rate()),
                    ),
                    (
                        "checksum".into(),
                        Json::Str(format!("{:#018x}", report.stats.checksum)),
                    ),
                ])
            }
            JobOutcome::Done(Err(e), _) => {
                state.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                Json::Obj(vec![
                    ("es".into(), Json::U64(u64::from(*es))),
                    ("error".into(), Json::Str(e.to_string())),
                ])
            }
        };
        rows.push(row);
    }

    let response = Json::Obj(vec![
        ("app".into(), Json::Str(base_req.app.clone())),
        (
            "baseline".into(),
            Json::Obj(vec![
                ("cycles".into(), Json::U64(base_report.stats.cycles)),
                (
                    "checksum".into(),
                    Json::Str(format!("{:#018x}", base_report.stats.checksum)),
                ),
            ]),
        ),
        ("rows".into(), Json::Arr(rows)),
    ]);
    Response::json(200, response.encode())
}

/// Upper bound on kernels per `/v1/fuzz` request (shard further instead).
const FUZZ_MAX_COUNT: u64 = 100_000;

/// Decode a u64 field that may arrive as a JSON number or a hex string
/// (`"0x..."`), since campaign seeds use the full u64 range.
fn parse_u64_field(v: &Json) -> Option<u64> {
    if let Some(n) = v.as_u64() {
        return Some(n);
    }
    let s = v.as_str()?;
    let s = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(s, 16).ok()
}

/// `POST /v1/fuzz`: run one shard of a fuzzing campaign on this worker.
///
/// Body: `{"seed": <u64|hex string>, "start": <u64>, "count": <u64>,
/// "cycle_budget"?: <u64>, "minimize"?: <bool>, "max_divergences"?: <u64>}`.
/// Workers regenerate every kernel locally from `mix(seed, index)` over
/// `start..start+count`, so the coordinator ships a few integers instead
/// of kernels, and disjoint shards of one seed merged in index order are
/// byte-identical to a local run of the whole range.
///
/// The shard runs synchronously on the connection thread against the
/// shared runner/cache (fuzz jobs are batch work; the bounded sim queue
/// stays free for interactive `/v1/run` traffic).
fn fuzz_endpoint(request: &Request, state: &ServerState) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::json(503, wire::error_json("server is draining"))
            .with_header("retry-after", "1");
    }
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let seed = match body.get("seed").and_then(parse_u64_field) {
        Some(s) => s,
        None => {
            return Response::json(
                400,
                wire::error_json("'seed' (u64 or hex string) is required"),
            )
        }
    };
    let count = match body.get("count").and_then(parse_u64_field) {
        Some(c) if (1..=FUZZ_MAX_COUNT).contains(&c) => c,
        Some(_) => {
            return Response::json(
                400,
                wire::error_json(&format!("'count' must be in 1..={FUZZ_MAX_COUNT}")),
            )
        }
        None => return Response::json(400, wire::error_json("'count' (u64) is required")),
    };
    let start = match body.get("start") {
        None => 0,
        Some(v) => match parse_u64_field(v) {
            Some(s) => s,
            None => return Response::json(400, wire::error_json("'start' must be a u64")),
        },
    };
    let mut oracle = regmutex_fuzz::OracleConfig {
        sm_workers: state.cfg.sm_workers,
        ..regmutex_fuzz::OracleConfig::default()
    };
    if let Some(b) = body.get("cycle_budget").and_then(parse_u64_field) {
        oracle.cycle_budget = b;
    }
    let cfg = regmutex_fuzz::CampaignConfig {
        seed,
        start,
        iters: count,
        oracle,
        minimize: body.get("minimize").and_then(Json::as_bool).unwrap_or(true),
        max_divergences: body
            .get("max_divergences")
            .and_then(parse_u64_field)
            .unwrap_or(5),
        ..regmutex_fuzz::CampaignConfig::default()
    };
    let report = regmutex_fuzz::run_campaign(&cfg, &state.runner);
    Response::json(200, report.to_json())
}

/// Run a server until SIGINT/SIGTERM or `POST /v1/shutdown`, then drain
/// gracefully. This is the body of `regmutex-cli serve`.
pub fn serve_until_shutdown(cfg: ServerConfig) -> std::io::Result<()> {
    crate::signal::install();
    let server = Server::start(cfg)?;
    println!(
        "regmutex-server listening on http://{} ({} sim workers, queue {})",
        server.local_addr(),
        server.state.cfg.sim_workers.max(1),
        server.state.cfg.queue_capacity
    );
    while !crate::signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    println!("regmutex-server: draining in-flight work ...");
    server.shutdown_and_wait();
    println!("regmutex-server: shutdown complete");
    Ok(())
}
