//! A small, dependency-free JSON value type with a strict parser and a
//! deterministic encoder.
//!
//! Design points that matter for this codebase:
//!
//! * **Integers stay exact.** Simulation counters and fingerprints are
//!   `u64`; round-tripping them through `f64` (the usual JSON number
//!   model) silently corrupts anything above 2^53. Integral tokens
//!   therefore parse into [`Json::U64`]/[`Json::I64`] and only genuinely
//!   fractional or out-of-range tokens become [`Json::F64`].
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map),
//!   so encoding is deterministic and golden-file friendly. Lookup is
//!   linear, which is fine at wire-format sizes.
//! * **The parser is hardened for untrusted input**: depth-limited,
//!   size-checked by the HTTP layer before it runs, and it never panics —
//!   every malformed byte sequence yields a [`JsonError`] with an offset.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (kept exact).
    U64(u64),
    /// A negative integer that fits `i64` (kept exact).
    I64(i64),
    /// Any other number (fractional, exponent, or out of integer range).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Encode to compact JSON text (no whitespace, stable field order).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    // JSON has no NaN/Inf; null is the least-bad encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts; deeper input is rejected
/// rather than risking a recursion-driven stack overflow on hostile bodies.
pub const MAX_DEPTH: usize = 64;

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected '{lit}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')
                                        .map_err(|_| self.err("lone high surrogate"))?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // encoding is already valid).
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = core::str::from_utf8(&s[..ch_len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Json::I64(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-17", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.encode(), text, "{text}");
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::U64(big));
        assert_eq!(v.encode(), big.to_string());
        // A value above 2^53 must NOT go through f64.
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn negative_and_fractional_numbers() {
        assert_eq!(parse("-5").unwrap(), Json::I64(-5));
        assert_eq!(parse("-5").unwrap().as_u64(), None);
        assert_eq!(parse("2.25").unwrap().as_f64(), Some(2.25));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-1.5e-2").unwrap().as_f64(), Some(-0.015));
    }

    #[test]
    fn objects_preserve_order_and_lookup() {
        let v = parse(r#"{"b":1,"a":2,"b":3}"#).unwrap();
        assert_eq!(v.encode(), r#"{"b":1,"a":2,"b":3}"#);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        // First match wins on duplicate keys.
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("zz"), None);
    }

    #[test]
    fn arrays_and_nesting() {
        let v = parse(r#"[1,[2,{"k":[3]}],null]"#).unwrap();
        assert_eq!(v.encode(), r#"[1,[2,{"k":[3]}],null]"#);
        assert_eq!(v.as_arr().unwrap().len(), 3);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}é"));
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Control characters re-encode escaped.
        assert_eq!(Json::Str("\u{1}".into()).encode(), r#""\u0001""#);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "01",
            "1.",
            "--1",
            "\"unterminated",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\q\"",
            "[1] trailing",
            "\u{7}",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_tolerance() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.encode(), r#"{"a":[1,2]}"#);
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::F64(f64::NAN).encode(), "null");
        assert_eq!(Json::F64(f64::INFINITY).encode(), "null");
    }
}
