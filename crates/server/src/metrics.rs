//! Service metrics in Prometheus text exposition format.
//!
//! Everything is plain atomics / a small mutex-guarded map — scrape cost
//! is a handful of loads, and recording on the request path is wait-free
//! except for the per-(route, status) counter.
//!
//! Latency is a fixed-bucket histogram (`_bucket`/`_sum`/`_count` with
//! cumulative `le` labels), from which p50/p95/p99 are derivable by any
//! Prometheus-style consumer; the load generator reports exact
//! percentiles client-side from its own samples.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Histogram bucket upper bounds, in seconds. Spans 100 µs … 10 s, which
/// covers a cache hit (≈ sub-ms) through a cold heavyweight simulation.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 0.5, 2.5, 10.0,
];

/// A fixed-bucket latency histogram.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_S.len()],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        let s = d.as_secs_f64();
        for (i, le) in LATENCY_BUCKETS_S.iter().enumerate() {
            if s <= *le {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        self.sum_micros.fetch_add(
            d.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS_S.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let sum = self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    }
}

/// Bucket upper bounds for the requests-per-connection histogram:
/// 1 (Connection: close clients) through deep keep-alive reuse.
pub const COUNT_BUCKETS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// A fixed-bucket histogram over small integer counts (requests served
/// per connection).
#[derive(Default)]
pub struct CountHistogram {
    buckets: [AtomicU64; COUNT_BUCKETS.len()],
    sum: AtomicU64,
    count: AtomicU64,
}

impl CountHistogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        for (i, le) in COUNT_BUCKETS.iter().enumerate() {
            if v <= *le {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations (connections closed).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (requests served over closed connections).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, le) in COUNT_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let count = self.count.load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{name}_sum {}", self.sum.load(Ordering::Relaxed));
        let _ = writeln!(out, "{name}_count {count}");
    }
}

/// Aggregated simulation counters (summed over every completed job).
#[derive(Default)]
pub struct SimTotals {
    /// Simulated cycles.
    pub cycles: AtomicU64,
    /// Dynamic instructions.
    pub instructions: AtomicU64,
    /// `acq.es` attempts.
    pub acquire_attempts: AtomicU64,
    /// Successful acquires.
    pub acquire_successes: AtomicU64,
    /// Global-memory requests.
    pub mem_requests: AtomicU64,
    /// RFV emergency spills.
    pub spills: AtomicU64,
    /// Cycles fast-forwarded by the event-driven loop.
    pub skipped_cycles: AtomicU64,
    /// `Sm::step` invocations actually executed.
    pub step_calls: AtomicU64,
}

impl SimTotals {
    /// Fold one run's stats in.
    pub fn add(&self, stats: &regmutex_sim::SimStats) {
        self.cycles.fetch_add(stats.cycles, Ordering::Relaxed);
        self.instructions
            .fetch_add(stats.instructions, Ordering::Relaxed);
        self.acquire_attempts
            .fetch_add(stats.acquire_attempts, Ordering::Relaxed);
        self.acquire_successes
            .fetch_add(stats.acquire_successes, Ordering::Relaxed);
        self.mem_requests
            .fetch_add(stats.mem_requests, Ordering::Relaxed);
        self.spills.fetch_add(stats.spills, Ordering::Relaxed);
        self.skipped_cycles
            .fetch_add(stats.skipped_cycles, Ordering::Relaxed);
        self.step_calls
            .fetch_add(stats.step_calls, Ordering::Relaxed);
    }
}

/// All server metrics; one instance per server, shared by every thread.
#[derive(Default)]
pub struct Metrics {
    /// Requests by `(route, status)`.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// End-to-end latency of `/v1/run` requests (queue wait + simulate).
    pub run_latency: Histogram,
    /// Jobs rejected with 429 (queue full).
    pub jobs_rejected: AtomicU64,
    /// Jobs whose simulation panicked (isolated; answered 500).
    pub jobs_panicked: AtomicU64,
    /// Jobs that returned a structured simulation error (answered 422).
    pub jobs_failed: AtomicU64,
    /// Jobs completing successfully.
    pub jobs_ok: AtomicU64,
    /// Requests served per keep-alive connection, observed at close.
    pub requests_per_conn: CountHistogram,
    /// Job requests refused by the per-client token bucket (429).
    pub throttled: AtomicU64,
    /// Rows/lines delivered over chunked streaming responses.
    pub streamed_rows: AtomicU64,
    /// Aggregated counters over completed simulations.
    pub sim: SimTotals,
}

impl Metrics {
    /// Count one finished request.
    pub fn record_request(&self, route: &'static str, status: u16) {
        *self
            .requests
            .lock()
            .unwrap()
            .entry((route, status))
            .or_insert(0) += 1;
    }

    /// Total requests answered with `status` (any route) — test helper and
    /// drain-time accounting.
    pub fn requests_with_status(&self, status: u16) -> u64 {
        self.requests
            .lock()
            .unwrap()
            .iter()
            .filter(|((_, s), _)| *s == status)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Render the full Prometheus exposition. Gauges that live outside
    /// `Metrics` (queue depth, cache occupancy, …) are passed in.
    pub fn render(&self, gauges: &ServiceGauges) -> String {
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "# TYPE regmutex_requests_total counter");
        for ((route, status), n) in self.requests.lock().unwrap().iter() {
            let _ = writeln!(
                out,
                "regmutex_requests_total{{route=\"{route}\",status=\"{status}\"}} {n}"
            );
        }
        self.run_latency
            .render("regmutex_request_duration_seconds", &mut out);

        let counter = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "regmutex_jobs_rejected_total",
            self.jobs_rejected.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_jobs_panicked_total",
            self.jobs_panicked.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_jobs_failed_total",
            self.jobs_failed.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_jobs_ok_total",
            self.jobs_ok.load(Ordering::Relaxed),
        );

        gauge(&mut out, "regmutex_queue_depth", gauges.queue_depth);
        gauge(&mut out, "regmutex_queue_capacity", gauges.queue_capacity);
        gauge(&mut out, "regmutex_inflight_jobs", gauges.inflight_jobs);
        gauge(
            &mut out,
            "regmutex_active_connections",
            gauges.active_connections,
        );
        // Event-loop serving metrics. `regmutex_http_connections_active`
        // intentionally mirrors `regmutex_active_connections` under the
        // http-prefixed name the fleet probe loop scrapes.
        gauge(
            &mut out,
            "regmutex_http_connections_active",
            gauges.active_connections,
        );
        gauge(
            &mut out,
            "regmutex_http_pipeline_depth",
            gauges.pipeline_depth,
        );
        counter(
            &mut out,
            "regmutex_http_throttled_total",
            self.throttled.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_http_streamed_rows_total",
            self.streamed_rows.load(Ordering::Relaxed),
        );
        self.requests_per_conn
            .render("regmutex_http_requests_per_connection", &mut out);
        counter(
            &mut out,
            "regmutex_durable_degradations_total",
            gauges.durable_degradations,
        );
        counter(&mut out, "regmutex_cache_hits_total", gauges.cache_hits);
        counter(&mut out, "regmutex_cache_misses_total", gauges.cache_misses);
        counter(
            &mut out,
            "regmutex_cache_evictions_total",
            gauges.cache_evictions,
        );
        gauge(&mut out, "regmutex_cache_bytes", gauges.cache_bytes);
        gauge(&mut out, "regmutex_cache_entries", gauges.cache_entries);

        counter(
            &mut out,
            "regmutex_sim_cycles_total",
            self.sim.cycles.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_sim_instructions_total",
            self.sim.instructions.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_sim_acquire_attempts_total",
            self.sim.acquire_attempts.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_sim_acquire_successes_total",
            self.sim.acquire_successes.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_sim_mem_requests_total",
            self.sim.mem_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_sim_spills_total",
            self.sim.spills.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_sim_skipped_cycles_total",
            self.sim.skipped_cycles.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "regmutex_sim_step_calls_total",
            self.sim.step_calls.load(Ordering::Relaxed),
        );
        out
    }
}

/// Point-in-time gauges sampled at scrape.
#[derive(Debug, Default, Clone)]
pub struct ServiceGauges {
    /// Jobs waiting in the bounded queue.
    pub queue_depth: u64,
    /// Queue capacity.
    pub queue_capacity: u64,
    /// Jobs currently simulating.
    pub inflight_jobs: u64,
    /// Open client connections.
    pub active_connections: u64,
    /// Parsed requests waiting in per-connection pipelines.
    pub pipeline_depth: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Result-cache resident bytes.
    pub cache_bytes: u64,
    /// Result-cache resident entries.
    pub cache_entries: u64,
    /// Durable journal/store writers downgraded to in-memory-only after
    /// an I/O error (process-wide; see `regmutex_durable`).
    pub durable_degradations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(50)); // ≤ 0.0001
        h.observe(Duration::from_millis(3)); // ≤ 0.005
        h.observe(Duration::from_secs(60)); // above every bound → +Inf only
        let mut out = String::new();
        h.render("t", &mut out);
        assert!(out.contains("t_bucket{le=\"0.0001\"} 1"), "{out}");
        assert!(out.contains("t_bucket{le=\"0.005\"} 2"), "{out}");
        assert!(out.contains("t_bucket{le=\"10\"} 2"), "{out}");
        assert!(out.contains("t_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("t_count 3"), "{out}");
    }

    #[test]
    fn request_counters_group_by_route_and_status() {
        let m = Metrics::default();
        m.record_request("/v1/run", 200);
        m.record_request("/v1/run", 200);
        m.record_request("/v1/run", 429);
        m.record_request("/healthz", 200);
        let text = m.render(&ServiceGauges::default());
        assert!(
            text.contains("regmutex_requests_total{route=\"/v1/run\",status=\"200\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("regmutex_requests_total{route=\"/v1/run\",status=\"429\"} 1"),
            "{text}"
        );
        assert_eq!(m.requests_with_status(200), 3);
    }

    #[test]
    fn count_histogram_and_loop_series_render() {
        let m = Metrics::default();
        m.requests_per_conn.observe(1);
        m.requests_per_conn.observe(8);
        m.requests_per_conn.observe(1000); // above every bound → +Inf only
        m.throttled.fetch_add(2, Ordering::Relaxed);
        m.streamed_rows.fetch_add(7, Ordering::Relaxed);
        let text = m.render(&ServiceGauges {
            active_connections: 3,
            pipeline_depth: 5,
            ..ServiceGauges::default()
        });
        assert!(
            text.contains("regmutex_http_requests_per_connection_bucket{le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("regmutex_http_requests_per_connection_bucket{le=\"8\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("regmutex_http_requests_per_connection_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("regmutex_http_requests_per_connection_sum 1009"),
            "{text}"
        );
        assert!(
            text.contains("regmutex_http_connections_active 3"),
            "{text}"
        );
        assert!(text.contains("regmutex_http_pipeline_depth 5"), "{text}");
        assert!(text.contains("regmutex_http_throttled_total 2"), "{text}");
        assert!(
            text.contains("regmutex_http_streamed_rows_total 7"),
            "{text}"
        );
    }

    #[test]
    fn sim_totals_aggregate() {
        let m = Metrics::default();
        let stats = regmutex_sim::SimStats {
            cycles: 10,
            instructions: 20,
            acquire_attempts: 5,
            acquire_successes: 4,
            mem_requests: 7,
            spills: 1,
            skipped_cycles: 9,
            step_calls: 3,
            ..Default::default()
        };
        m.sim.add(&stats);
        m.sim.add(&stats);
        let text = m.render(&ServiceGauges::default());
        assert!(text.contains("regmutex_sim_cycles_total 20"), "{text}");
        assert!(
            text.contains("regmutex_sim_instructions_total 40"),
            "{text}"
        );
        assert!(
            text.contains("regmutex_sim_skipped_cycles_total 18"),
            "{text}"
        );
        assert!(text.contains("regmutex_sim_step_calls_total 6"), "{text}");
    }
}
