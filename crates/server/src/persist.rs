//! The disk-backed durable result tier.
//!
//! [`DiskTier`] implements [`regmutex_bench::DurableTier`] on top of
//! [`regmutex_durable::ResultStore`], using this crate's lossless wire
//! codec ([`wire::report_to_json`] / [`wire::report_from_json`]) as the
//! on-disk payload format. The codec already round-trips every report
//! field (checksums as hex strings, stall attribution, plans) for the
//! HTTP API, so persisting through it adds no second serialization to
//! keep honest.
//!
//! Only `Ok` reports are persisted. A deterministic simulation that
//! failed once fails identically when re-run, so skipping errors
//! preserves byte-identical resumed output without inventing a lossy
//! `RunError` serialization for the structured `Sim`/`InvalidKernel`
//! payloads.
//!
//! The same tier serves three callers: `serve --cache-dir` (a restarted
//! daemon comes up warm), the campaign verbs' `--journal` directories
//! (completed jobs replay from disk instead of re-simulating), and the
//! fleet coordinator (verified worker results are skipped on resume).

use std::path::Path;
use std::sync::Arc;

use regmutex_bench::{CachedResult, DurableTier};
use regmutex_durable::ResultStore;

use crate::json;
use crate::wire;

/// Layout: results live under `<dir>/store/<fingerprint hex>`, next to
/// the campaign journal (`<dir>/journal.log`) when one is in use.
pub struct DiskTier {
    store: ResultStore,
}

impl DiskTier {
    /// Open (creating if needed) the result store under `dir/store`.
    pub fn open(dir: &Path) -> std::io::Result<DiskTier> {
        Ok(DiskTier {
            store: ResultStore::open(&dir.join("store"))?,
        })
    }

    /// [`DiskTier::open`] behind an [`Arc`], ready for
    /// [`regmutex_bench::Runner::set_tier`].
    pub fn shared(dir: &Path) -> std::io::Result<Arc<DiskTier>> {
        Ok(Arc::new(Self::open(dir)?))
    }

    /// The underlying store (warm-start accounting).
    pub fn store(&self) -> &ResultStore {
        &self.store
    }
}

impl DurableTier for DiskTier {
    fn load(&self, key: u64) -> Option<CachedResult> {
        let bytes = self.store.get(key)?;
        let text = String::from_utf8(bytes).ok()?;
        let v = json::parse(&text).ok()?;
        let report = wire::report_from_json(&v).ok()?;
        Some(Ok(report))
    }

    fn save(&self, key: u64, value: &CachedResult) {
        if let Ok(report) = value {
            self.store
                .put(key, wire::report_to_json(report).encode().as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regmutex::{RunError, RunReport, Technique};
    use regmutex_sim::{SimStats, StallReason};

    fn tier_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rmx-disktier-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn tier(tag: &str) -> DiskTier {
        DiskTier::open(&tier_dir(tag)).unwrap()
    }

    fn report() -> RunReport {
        let mut stats = SimStats {
            cycles: 1234,
            instructions: 987,
            checksum: 0xfeed_f00d_dead_beef,
            ..Default::default()
        };
        stats.stall_cycles.insert(StallReason::Acquire, 55);
        RunReport {
            technique: Technique::RegMutex,
            kernel_name: "persist-test".into(),
            stats,
            plan: None,
            theoretical_occupancy_warps: 36,
            max_warps: 48,
            storage_overhead_bits: 128,
        }
    }

    #[test]
    fn ok_reports_round_trip_losslessly() {
        let t = tier("roundtrip");
        t.save(42, &Ok(report()));
        let got = t.load(42).expect("saved result must load").unwrap();
        let want = report();
        assert_eq!(got.technique, want.technique);
        assert_eq!(got.kernel_name, want.kernel_name);
        assert_eq!(got.stats, want.stats);
        assert_eq!(
            got.theoretical_occupancy_warps,
            want.theoretical_occupancy_warps
        );
        assert_eq!(got.storage_overhead_bits, want.storage_overhead_bits);
    }

    #[test]
    fn errors_are_not_persisted() {
        let t = tier("errors");
        t.save(7, &Err(RunError::Panicked("boom".into())));
        assert!(t.load(7).is_none());
        assert_eq!(t.store().entries(), 0);
    }

    #[test]
    fn corrupt_store_entry_is_a_miss_not_a_lie() {
        let dir = tier_dir("corrupt");
        let t = DiskTier::open(&dir).unwrap();
        t.save(9, &Ok(report()));
        // Corrupt the payload on disk; the store checksum rejects it.
        let file = dir.join("store").join(format!("{:016x}", 9u64));
        let mut raw = std::fs::read(&file).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&file, &raw).unwrap();
        assert!(t.load(9).is_none());
        assert_eq!(t.store().rejected(), 1);
    }
}
