//! Minimal HTTP/1.1 on `std::net`: a hardened server-side request reader,
//! a response writer, and the tiny client the load generator uses.
//!
//! This is deliberately not a general HTTP implementation. It supports
//! exactly what the simulation service needs — one request per connection
//! (`Connection: close`), bodies framed by `Content-Length`, and strict
//! limits so hostile bytes produce a structured 4xx instead of a panic,
//! an allocation blow-up, or a hung worker:
//!
//! * request line + headers capped at [`Limits::max_head_bytes`],
//! * bodies capped at [`Limits::max_body_bytes`] (413 beyond it),
//! * every read governed by a socket timeout (408 on expiry),
//! * malformed syntax anywhere → 400 with a JSON error body.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Server-side read limits.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (CRLFCRLF included).
    pub max_head_bytes: usize,
    /// Maximum request body bytes.
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(2),
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string split off).
    pub path: String,
    /// Raw query string, without the `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one status code,
/// so the connection handler can always answer with structure.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed syntax → 400.
    BadRequest(String),
    /// Head or body over the configured limit → 413.
    TooLarge(String),
    /// The socket read timed out mid-request → 408.
    Timeout,
    /// The peer closed or the socket died; nothing to answer.
    Disconnected,
}

impl HttpError {
    /// The HTTP status this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::Timeout => 408,
            HttpError::Disconnected => 0,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::TooLarge(m) => m.clone(),
            HttpError::Timeout => "timed out reading request".to_string(),
            HttpError::Disconnected => "connection closed".to_string(),
        }
    }
}

impl core::fmt::Display for HttpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "http error {}: {}", self.status(), self.detail())
    }
}

impl std::error::Error for HttpError {}

fn map_io(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Disconnected,
    }
}

/// Read one request from `stream` under `limits`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending anything (not an error — just no request).
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Option<Request>, HttpError> {
    stream
        .set_read_timeout(Some(limits.read_timeout))
        .map_err(map_io)?;

    // Accumulate until the blank line, never past max_head_bytes.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_crlfcrlf(&buf) {
            break pos;
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {} bytes",
                limits.max_head_bytes
            )));
        }
        let want = (limits.max_head_bytes - buf.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(map_io)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("truncated request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = core::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let (method, path, query) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line: {line:?}")))?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"-_".contains(&b))
        {
            return Err(HttpError::BadRequest(format!(
                "invalid header name: {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: Content-Length only (no chunked support — we never
    // advertise it and reject it rather than mis-frame).
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported; use content-length".into(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<u64>()
            .ok()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| HttpError::BadRequest(format!("invalid content-length: {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {}-byte limit",
            limits.max_body_bytes
        )));
    }

    // The head buffer may already hold body bytes.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::BadRequest(
            "more body bytes than content-length".into(),
        ));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(map_io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

fn parse_request_line(line: &str) -> Result<(String, String, Option<String>), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line: {line:?}"
        )));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("invalid method: {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version: {version:?}"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target must be absolute-path: {target:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    Ok((method.to_string(), path, query))
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Additional headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response (Prometheus metrics).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// Attach an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }
}

/// The reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto `stream` (always `Connection: close`).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// A client-side response (status, headers, body).
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Lowercased header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot HTTP client call: connect, send, read the full response.
/// `Connection: close` framing — the response ends at EOF (or at
/// `Content-Length`, whichever comes first).
pub fn client_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> Result<ClientResponse, HttpError> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|_| HttpError::Disconnected)?
        .next()
        .ok_or(HttpError::Disconnected)?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(map_io)?;
    stream.set_read_timeout(Some(timeout)).map_err(map_io)?;
    stream.set_write_timeout(Some(timeout)).map_err(map_io)?;

    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(map_io)?;
    stream.write_all(body).map_err(map_io)?;
    stream.flush().map_err(map_io)?;

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => {
                // A peer that already sent a full response may reset on
                // close; only fail if we have nothing parseable.
                if raw.is_empty() {
                    return Err(map_io(e));
                }
                break;
            }
        }
        if raw.len() > 16 * 1024 * 1024 {
            return Err(HttpError::TooLarge("response too large".into()));
        }
    }

    let head_end = find_crlfcrlf(&raw)
        .ok_or_else(|| HttpError::BadRequest("response missing header terminator".into()))?;
    let head = core::str::from_utf8(&raw[..head_end])
        .map_err(|_| HttpError::BadRequest("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::BadRequest(format!("bad status line: {status_line:?}")))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = raw[head_end + 4..].to_vec();
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing() {
        let (m, p, q) = parse_request_line("GET /v1/workloads?x=1 HTTP/1.1").unwrap();
        assert_eq!((m.as_str(), p.as_str()), ("GET", "/v1/workloads"));
        assert_eq!(q.as_deref(), Some("x=1"));
        for bad in [
            "GET",
            "GET /",
            "GET / HTTP/2.0",
            "get / HTTP/1.1",
            "GET  / HTTP/1.1",
            "GET relative HTTP/1.1",
            "G@T / HTTP/1.1",
            "GET / HTTP/1.1 extra",
        ] {
            assert!(parse_request_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_statuses() {
        assert_eq!(HttpError::BadRequest("x".into()).status(), 400);
        assert_eq!(HttpError::TooLarge("x".into()).status(), 413);
        assert_eq!(HttpError::Timeout.status(), 408);
    }

    #[test]
    fn crlf_scan() {
        assert_eq!(find_crlfcrlf(b"ab\r\n\r\ncd"), Some(2));
        assert_eq!(find_crlfcrlf(b"ab\r\ncd"), None);
    }
}
