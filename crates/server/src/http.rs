//! Minimal HTTP/1.1 on `std::net`: an incremental, hardened request
//! parser for the event loop, response encoders with keep-alive and
//! chunked framing, and a small reusable client.
//!
//! This is deliberately not a general HTTP implementation. It supports
//! exactly what the simulation service needs — persistent connections
//! with bounded pipelining, request bodies framed by `Content-Length`
//! only, chunked transfer encoding on *responses* (streamed sweeps), and
//! strict limits so hostile bytes produce a structured 4xx instead of a
//! panic, an allocation blow-up, or a hung worker:
//!
//! * request line + headers capped at [`Limits::max_head_bytes`],
//! * bodies capped at [`Limits::max_body_bytes`] (413 beyond it),
//! * absolute per-request deadlines enforced by the loop's timer wheel
//!   (408 on expiry — a slow drip cannot reset them),
//! * malformed syntax anywhere → 400 with a JSON error body.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Server-side read limits and connection policy.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (CRLFCRLF included).
    pub max_head_bytes: usize,
    /// Maximum request body bytes.
    pub max_body_bytes: usize,
    /// Absolute deadline for receiving one full request, measured from
    /// its first byte (slowloris bound; 408 on expiry).
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection is kept open.
    pub idle_timeout: Duration,
    /// How long a flushing write may sit unready before the connection
    /// is dropped.
    pub write_timeout: Duration,
    /// Maximum pipelined requests in flight per connection; further
    /// bytes stay in the socket buffer (TCP backpressure).
    pub max_pipeline: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(10),
            max_pipeline: 8,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string split off).
    pub path: String,
    /// Raw query string, without the `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.1` (vs `HTTP/1.0`).
    pub version_11: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Connection persistence the client asked for: HTTP/1.1 defaults to
    /// keep-alive unless `Connection: close`; HTTP/1.0 must opt in.
    pub fn wants_keep_alive(&self) -> bool {
        if let Some(v) = self.header("connection") {
            let has = |t: &str| v.split(',').any(|p| p.trim().eq_ignore_ascii_case(t));
            if has("close") {
                return false;
            }
            if has("keep-alive") {
                return true;
            }
        }
        self.version_11
    }
}

/// Why a request could not be read. Each variant maps to one status code,
/// so the connection handler can always answer with structure.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed syntax → 400.
    BadRequest(String),
    /// Head or body over the configured limit → 413.
    TooLarge(String),
    /// The request deadline expired mid-request → 408.
    Timeout,
    /// The peer closed or the socket died; nothing to answer.
    Disconnected,
}

impl HttpError {
    /// The HTTP status this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
            HttpError::Timeout => 408,
            HttpError::Disconnected => 0,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::TooLarge(m) => m.clone(),
            HttpError::Timeout => "timed out reading request".to_string(),
            HttpError::Disconnected => "connection closed".to_string(),
        }
    }
}

impl core::fmt::Display for HttpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "http error {}: {}", self.status(), self.detail())
    }
}

impl std::error::Error for HttpError {}

fn map_io(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Disconnected,
    }
}

/// Try to parse one complete request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full request (head +
/// body) is present, `Ok(None)` when more bytes are needed, and an error
/// for anything malformed or over limit. The caller owns the buffer and
/// drains `consumed` bytes on success; leftover bytes are the next
/// pipelined request.
pub fn parse_request_buf(
    buf: &[u8],
    limits: &Limits,
) -> Result<Option<(Request, usize)>, HttpError> {
    let head_end = match find_crlfcrlf(buf) {
        Some(p) => p,
        None => {
            if buf.len() >= limits.max_head_bytes {
                return Err(HttpError::TooLarge(format!(
                    "request head exceeds {} bytes",
                    limits.max_head_bytes
                )));
            }
            return Ok(None);
        }
    };
    if head_end + 4 > limits.max_head_bytes {
        return Err(HttpError::TooLarge(format!(
            "request head exceeds {} bytes",
            limits.max_head_bytes
        )));
    }

    let head = core::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let (method, path, query, version_11) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line: {line:?}")))?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"-_".contains(&b))
        {
            return Err(HttpError::BadRequest(format!(
                "invalid header name: {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: Content-Length only (no chunked requests — we never
    // advertise it and reject it rather than mis-frame).
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest(
            "transfer-encoding is not supported; use content-length".into(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<u64>()
            .ok()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| HttpError::BadRequest(format!("invalid content-length: {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {}-byte limit",
            limits.max_body_bytes
        )));
    }

    let body_start = head_end + 4;
    if buf.len() - body_start < content_length {
        return Ok(None);
    }
    let consumed = body_start + content_length;
    Ok(Some((
        Request {
            method,
            path,
            query,
            headers,
            body: buf[body_start..consumed].to_vec(),
            version_11,
        },
        consumed,
    )))
}

fn parse_request_line(line: &str) -> Result<(String, String, Option<String>, bool), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line: {line:?}"
        )));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!("invalid method: {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version: {version:?}"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target must be absolute-path: {target:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    Ok((method.to_string(), path, query, version == "HTTP/1.1"))
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Additional headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response (Prometheus metrics).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    /// Attach an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }
}

/// The reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a complete response (head + body) with `Content-Length`
/// framing into bytes the event loop can write incrementally.
pub fn encode_response(resp: &Response, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    out
}

/// The head of a chunked streaming response; body chunks follow via
/// [`encode_chunk`], terminated by [`CHUNK_END`].
pub fn encode_stream_head(status: u16, content_type: &str, keep_alive: bool) -> Vec<u8> {
    format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// One chunk frame (`<hex len>\r\n<data>\r\n`). Empty data encodes
/// nothing — the empty chunk is the terminator, use [`CHUNK_END`].
pub fn encode_chunk(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating frame of a chunked body.
pub const CHUNK_END: &[u8] = b"0\r\n\r\n";

/// A client-side response (status, headers, body).
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Lowercased header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes (chunked transfer encoding already decoded).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

const CLIENT_MAX_RESPONSE: usize = 16 * 1024 * 1024;

/// A small HTTP/1.1 client with optional connection reuse.
///
/// One request at a time; responses are framed by `Content-Length`,
/// chunked transfer encoding (decoded transparently), or EOF. A request
/// that fails on a *reused* connection before any response byte arrives
/// is retried once on a fresh connection — the normal keep-alive race
/// where the server closed an idle socket just as we wrote to it.
/// Timeouts are never retried (the request may be executing).
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    timeout: Duration,
    keep_alive: bool,
    stream: Option<TcpStream>,
    /// Carryover bytes read past the previous response's end.
    rbuf: Vec<u8>,
    requests_on_current: u64,
    /// Total connections opened over the client's lifetime.
    pub connections_opened: u64,
    /// Total requests successfully completed.
    pub requests_sent: u64,
    /// Requests served by each *closed* connection, in open order.
    finished_conns: Vec<u64>,
}

impl HttpClient {
    /// A client for `addr`. With `keep_alive` false every request opens
    /// and closes its own connection (`Connection: close`).
    pub fn new(addr: impl Into<String>, timeout: Duration, keep_alive: bool) -> Self {
        HttpClient {
            addr: addr.into(),
            timeout,
            keep_alive,
            stream: None,
            rbuf: Vec::new(),
            requests_on_current: 0,
            connections_opened: 0,
            requests_sent: 0,
            finished_conns: Vec::new(),
        }
    }

    /// Change the per-request timeout (applies from the next request).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
        // Force the new deadline onto an existing socket too.
        if let Some(s) = &self.stream {
            let _ = s.set_read_timeout(Some(timeout));
            let _ = s.set_write_timeout(Some(timeout));
        }
    }

    /// Requests served per connection, including the one still open.
    pub fn conn_request_counts(&self) -> Vec<u64> {
        let mut v = self.finished_conns.clone();
        if self.stream.is_some() && self.requests_on_current > 0 {
            v.push(self.requests_on_current);
        }
        v
    }

    fn drop_conn(&mut self) {
        if self.stream.take().is_some() {
            self.finished_conns.push(self.requests_on_current);
        }
        self.requests_on_current = 0;
        self.rbuf.clear();
    }

    fn connect(&mut self) -> Result<(), HttpError> {
        let addr = self
            .addr
            .to_socket_addrs()
            .map_err(|_| HttpError::Disconnected)?
            .next()
            .ok_or(HttpError::Disconnected)?;
        let stream = TcpStream::connect_timeout(&addr, self.timeout).map_err(map_io)?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(map_io)?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(map_io)?;
        stream.set_nodelay(true).ok();
        self.stream = Some(stream);
        self.connections_opened += 1;
        self.requests_on_current = 0;
        self.rbuf.clear();
        Ok(())
    }

    /// Send one request and read its full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, HttpError> {
        for attempt in 0..2 {
            let reused = self.stream.is_some();
            if !reused {
                self.connect()?;
            }
            match self.try_request(method, path, body) {
                Ok(resp) => {
                    self.requests_sent += 1;
                    self.requests_on_current += 1;
                    let close = !self.keep_alive
                        || resp
                            .header("connection")
                            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    if close {
                        // Count the request before discarding the socket.
                        self.requests_on_current = self.requests_on_current.max(1);
                        self.drop_conn();
                    }
                    return Ok(resp);
                }
                Err((err, saw_bytes)) => {
                    self.drop_conn();
                    let stale_keep_alive = reused
                        && !saw_bytes
                        && attempt == 0
                        && matches!(err, HttpError::Disconnected);
                    if !stale_keep_alive {
                        return Err(err);
                    }
                }
            }
        }
        Err(HttpError::Disconnected)
    }

    /// Send every request back-to-back on one connection, then read the
    /// responses in order (HTTP/1.1 pipelining).
    ///
    /// All-or-nothing: any transport error drops the connection and
    /// fails the whole batch — there is no stale-keep-alive retry,
    /// because a batch interleaved with a retry could double-execute.
    /// Without keep-alive this degrades to sequential [`request`]s
    /// (pipelining needs a persistent connection).
    ///
    /// [`request`]: HttpClient::request
    pub fn request_batch(
        &mut self,
        method: &str,
        path: &str,
        bodies: &[&[u8]],
    ) -> Result<Vec<ClientResponse>, HttpError> {
        if bodies.is_empty() {
            return Ok(Vec::new());
        }
        if !self.keep_alive {
            let mut out = Vec::with_capacity(bodies.len());
            for body in bodies {
                out.push(self.request(method, path, Some(body))?);
            }
            return Ok(out);
        }
        if self.stream.is_none() {
            self.connect()?;
        }
        let mut wire = Vec::with_capacity(bodies.iter().map(|b| b.len() + 128).sum());
        for body in bodies {
            wire.extend_from_slice(
                format!(
                    "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
                    self.addr,
                    body.len(),
                )
                .as_bytes(),
            );
            wire.extend_from_slice(body);
        }
        {
            let stream = self.stream.as_mut().expect("connected");
            if let Err(e) = stream.write_all(&wire).and_then(|()| stream.flush()) {
                self.drop_conn();
                return Err(map_io(e));
            }
        }
        let mut out = Vec::with_capacity(bodies.len());
        while out.len() < bodies.len() {
            match self.read_response() {
                Ok(resp) => {
                    self.requests_sent += 1;
                    self.requests_on_current += 1;
                    let close = resp
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    out.push(resp);
                    if close {
                        self.drop_conn();
                        if out.len() < bodies.len() {
                            return Err(HttpError::Disconnected);
                        }
                    }
                }
                Err((e, _)) => {
                    self.drop_conn();
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// One attempt on the current socket. The bool in the error marks
    /// whether any response bytes had arrived (retry is unsafe then).
    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, (HttpError, bool)> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            self.addr,
            body.len(),
            if self.keep_alive { "keep-alive" } else { "close" },
        );
        {
            let stream = self.stream.as_mut().expect("connected");
            stream
                .write_all(head.as_bytes())
                .and_then(|()| stream.write_all(body))
                .and_then(|()| stream.flush())
                .map_err(|e| (map_io(e), false))?;
        }
        self.read_response()
    }

    /// Read until `rbuf` holds at least `want` bytes (or EOF/error).
    fn fill(&mut self, want: usize) -> Result<bool, HttpError> {
        let stream = self.stream.as_mut().expect("connected");
        let mut chunk = [0u8; 4096];
        while self.rbuf.len() < want {
            if self.rbuf.len() > CLIENT_MAX_RESPONSE {
                return Err(HttpError::TooLarge("response too large".into()));
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(map_io(e)),
            }
        }
        Ok(true)
    }

    fn read_response(&mut self) -> Result<ClientResponse, (HttpError, bool)> {
        // Head first: grow the buffer until the blank line shows up.
        let head_end = loop {
            if let Some(p) = find_crlfcrlf(&self.rbuf) {
                break p;
            }
            let saw = !self.rbuf.is_empty();
            let target = self.rbuf.len() + 1;
            match self.fill(target) {
                Ok(true) => {}
                Ok(false) => return Err((HttpError::Disconnected, saw)),
                Err(e) => return Err((e, saw)),
            }
            if self.rbuf.len() > 64 * 1024 && find_crlfcrlf(&self.rbuf).is_none() {
                return Err((HttpError::TooLarge("response head too large".into()), true));
            }
        };

        let head = match core::str::from_utf8(&self.rbuf[..head_end]) {
            Ok(h) => h.to_string(),
            Err(_) => {
                return Err((
                    HttpError::BadRequest("response head is not UTF-8".into()),
                    true,
                ))
            }
        };
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = match status_line.split(' ').nth(1).and_then(|s| s.parse().ok()) {
            Some(s) => s,
            None => {
                return Err((
                    HttpError::BadRequest(format!("bad status line: {status_line:?}")),
                    true,
                ))
            }
        };
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        self.rbuf.drain(..head_end + 4);

        let find = |name: &str| -> Option<String> {
            headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };

        let chunked =
            find("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity"));
        let body = if chunked {
            self.read_chunked_body().map_err(|e| (e, true))?
        } else if let Some(cl) = find("content-length") {
            let n: usize = match cl.parse() {
                Ok(n) if n <= CLIENT_MAX_RESPONSE => n,
                _ => {
                    return Err((
                        HttpError::BadRequest(format!("bad content-length: {cl:?}")),
                        true,
                    ))
                }
            };
            match self.fill(n) {
                Ok(true) => {}
                Ok(false) => {
                    return Err((
                        HttpError::BadRequest("truncated response body".into()),
                        true,
                    ))
                }
                Err(e) => return Err((e, true)),
            }
            self.rbuf.drain(..n).collect()
        } else {
            // EOF framing: read everything, connection is finished. A
            // peer that already sent bytes may reset on close; tolerate
            // errors after the head like the old one-shot client did.
            loop {
                let target = self.rbuf.len() + 4096;
                match self.fill(target) {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(HttpError::TooLarge(m)) => return Err((HttpError::TooLarge(m), true)),
                    Err(_) => break,
                }
            }
            let b = std::mem::take(&mut self.rbuf);
            self.stream = None;
            self.finished_conns.push(self.requests_on_current + 1);
            self.requests_on_current = 0;
            b
        };

        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    /// Decode a chunked body from the stream into plain bytes.
    fn read_chunked_body(&mut self) -> Result<Vec<u8>, HttpError> {
        let mut body = Vec::new();
        loop {
            // Size line: hex digits, optional ";extension", CRLF.
            let line_end = loop {
                if let Some(p) = self.rbuf.windows(2).position(|w| w == b"\r\n") {
                    break p;
                }
                if self.rbuf.len() > 1024 {
                    return Err(HttpError::TooLarge("chunk size line too long".into()));
                }
                let target = self.rbuf.len() + 1;
                if !self.fill(target)? {
                    return Err(HttpError::BadRequest("truncated chunked body".into()));
                }
            };
            let line = core::str::from_utf8(&self.rbuf[..line_end])
                .map_err(|_| HttpError::BadRequest("chunk size line is not UTF-8".into()))?;
            let size_str = line.split(';').next().unwrap_or_default().trim();
            let size = usize::from_str_radix(size_str, 16)
                .map_err(|_| HttpError::BadRequest(format!("bad chunk size: {line:?}")))?;
            if body.len() + size > CLIENT_MAX_RESPONSE {
                return Err(HttpError::TooLarge("response too large".into()));
            }
            self.rbuf.drain(..line_end + 2);

            if size == 0 {
                // Trailers (we send none): consume up to the blank line.
                loop {
                    if self.rbuf.starts_with(b"\r\n") {
                        self.rbuf.drain(..2);
                        return Ok(body);
                    }
                    if let Some(p) = self.rbuf.windows(2).position(|w| w == b"\r\n") {
                        self.rbuf.drain(..p + 2);
                        continue;
                    }
                    if self.rbuf.len() > 8 * 1024 {
                        return Err(HttpError::TooLarge("chunk trailers too long".into()));
                    }
                    let target = self.rbuf.len() + 1;
                    if !self.fill(target)? {
                        return Err(HttpError::BadRequest("truncated chunk trailers".into()));
                    }
                }
            }

            if !self.fill(size + 2)? {
                return Err(HttpError::BadRequest("truncated chunk data".into()));
            }
            body.extend_from_slice(&self.rbuf[..size]);
            if &self.rbuf[size..size + 2] != b"\r\n" {
                return Err(HttpError::BadRequest("chunk missing CRLF".into()));
            }
            self.rbuf.drain(..size + 2);
        }
    }
}

/// One-shot HTTP client call: connect, send, read the full response,
/// close. Chunked responses are decoded transparently.
pub fn client_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> Result<ClientResponse, HttpError> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|_| HttpError::Disconnected)?
        .next()
        .ok_or(HttpError::Disconnected)?;
    let mut client = HttpClient::new(addr.to_string(), timeout, false);
    client.request(method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bytes: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
        parse_request_buf(bytes, &Limits::default())
    }

    #[test]
    fn request_line_parsing() {
        let (m, p, q, v11) = parse_request_line("GET /v1/workloads?x=1 HTTP/1.1").unwrap();
        assert_eq!((m.as_str(), p.as_str()), ("GET", "/v1/workloads"));
        assert_eq!(q.as_deref(), Some("x=1"));
        assert!(v11);
        assert!(!parse_request_line("GET / HTTP/1.0").unwrap().3);
        for bad in [
            "GET",
            "GET /",
            "GET / HTTP/2.0",
            "get / HTTP/1.1",
            "GET  / HTTP/1.1",
            "GET relative HTTP/1.1",
            "G@T / HTTP/1.1",
            "GET / HTTP/1.1 extra",
        ] {
            assert!(parse_request_line(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn incremental_parse_waits_for_head_and_body() {
        assert!(req(b"GET / HTT").unwrap().is_none());
        assert!(req(b"POST / HTTP/1.1\r\ncontent-length: 5\r\n\r\nab")
            .unwrap()
            .is_none());
        let (r, consumed) = req(b"POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhelloEXTRA")
            .unwrap()
            .unwrap();
        assert_eq!(r.body, b"hello");
        assert_eq!(
            consumed,
            "POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello".len()
        );
    }

    #[test]
    fn pipelined_leftover_is_not_an_error() {
        // Bytes past the first request's body are the next request now —
        // the old reader called this "more body bytes than content-length".
        let buf = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (r1, c1) = req(buf).unwrap().unwrap();
        assert_eq!(r1.path, "/a");
        let (r2, c2) = req(&buf[c1..]).unwrap().unwrap();
        assert_eq!(r2.path, "/b");
        assert_eq!(c1 + c2, buf.len());
    }

    #[test]
    fn keep_alive_defaults_follow_version_and_connection_header() {
        let (r, _) = req(b"GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(r.wants_keep_alive());
        let (r, _) = req(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!r.wants_keep_alive());
        let (r, _) = req(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!r.wants_keep_alive());
        let (r, _) = req(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn limits_still_reject_oversize_and_chunked_requests() {
        let mut big = b"GET / HTTP/1.1\r\nx: ".to_vec();
        big.extend(std::iter::repeat_n(b'a', 9000));
        assert!(matches!(req(&big), Err(HttpError::TooLarge(_))));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n"),
            Err(HttpError::TooLarge(_))
        ));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn error_statuses() {
        assert_eq!(HttpError::BadRequest("x".into()).status(), 400);
        assert_eq!(HttpError::TooLarge("x".into()).status(), 413);
        assert_eq!(HttpError::Timeout.status(), 408);
    }

    #[test]
    fn crlf_scan() {
        assert_eq!(find_crlfcrlf(b"ab\r\n\r\ncd"), Some(2));
        assert_eq!(find_crlfcrlf(b"ab\r\ncd"), None);
    }

    #[test]
    fn chunk_frames_round_trip_concatenation() {
        let mut wire = Vec::new();
        wire.extend(encode_chunk(b"hello "));
        wire.extend(encode_chunk(b""));
        wire.extend(encode_chunk(b"world"));
        wire.extend(CHUNK_END);
        assert_eq!(wire, b"6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n");
    }

    #[test]
    fn response_encoders_frame_correctly() {
        let resp = Response::json(200, "{}").with_header("retry-after", "1");
        let bytes = encode_response(&resp, true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let head = String::from_utf8(encode_stream_head(200, "application/json", false)).unwrap();
        assert!(head.contains("transfer-encoding: chunked\r\n"));
        assert!(head.contains("connection: close\r\n"));
    }
}
