//! SIGINT/SIGTERM → a process-wide shutdown flag (+ event-loop wake).
//!
//! The handler flips an `AtomicBool` and, when a wake fd has been
//! registered with [`set_wake_fd`], writes one token to that eventfd —
//! both operations are async-signal-safe (`write(2)` is on the POSIX
//! safe list). No channels, no allocation, no locks in the handler. The
//! eventfd write is what lets a SIGTERM interrupt `epoll_wait`
//! immediately instead of waiting out the current tick. On non-Unix
//! targets installation is a no-op and `POST /v1/shutdown` remains the
//! way to stop the daemon.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The eventfd the handler nudges, or -1 when no loop is registered.
static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

/// Register the event loop's wake eventfd with the signal handler.
pub fn set_wake_fd(fd: std::os::fd::RawFd) {
    WAKE_FD.store(fd, Ordering::SeqCst);
}

/// Whether a termination signal has been received (or [`raise`] called).
pub fn triggered() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Set the flag from safe code (tests, portable fallbacks).
pub fn raise() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
        // Wake the epoll loop so the drain starts now, not next tick.
        crate::poll::wake_raw(super::WAKE_FD.load(Ordering::SeqCst));
    }

    /// Install the handler for SIGINT and SIGTERM.
    #[allow(unsafe_code)]
    pub fn install() {
        // `signal(2)` is in every libc we build against; declaring it here
        // keeps the crate dependency-free. The handler does a single
        // atomic store, which is async-signal-safe.
        unsafe extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal handling off Unix; `POST /v1/shutdown` still works.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_sets_the_flag() {
        install();
        raise();
        assert!(triggered());
    }
}
