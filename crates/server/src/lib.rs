//! # regmutex-server
//!
//! A dependency-free simulation service for the RegMutex reproduction:
//! a hand-rolled HTTP/1.1 daemon (`regmutex-cli serve`) that exposes the
//! simulator over a small JSON API, plus a closed-loop load generator
//! (`regmutex-cli loadgen`) for measuring it.
//!
//! Everything is `std`-only to preserve the fully offline build: sockets
//! are `std::net` driven by a raw-epoll event loop ([`poll`] +
//! `event_loop`), JSON is [`json`], HTTP framing is [`http`]
//! (keep-alive, bounded pipelining, chunked streaming), connection
//! deadlines come from a [`timer`] wheel, the job queue is a
//! `Mutex`/`Condvar` [`queue::BoundedQueue`], and metrics are atomics
//! rendered as Prometheus text ([`metrics`]).
//!
//! ## Routes
//!
//! | Route               | Meaning                                        |
//! |---------------------|------------------------------------------------|
//! | `GET /healthz`      | liveness + drain state                         |
//! | `GET /metrics`      | Prometheus text exposition                     |
//! | `GET /v1/workloads` | the Table I workload registry                  |
//! | `POST /v1/run`      | simulate one (workload, technique) job         |
//! | `POST /v1/sweep`    | baseline + forced-`|Es|` RegMutex sweep        |
//! | `POST /v1/shutdown` | begin graceful drain                           |
//!
//! ## Guarantees
//!
//! * **Backpressure, not collapse.** The job queue is bounded; beyond it
//!   clients get `429` + `Retry-After` immediately. Every request gets a
//!   response — nothing is silently dropped.
//! * **Shared, bounded caching.** All workers share one content-addressed
//!   result cache (LRU, byte budget), so repeated requests are served in
//!   microseconds without re-simulating.
//! * **Hostile input is survivable.** Oversized heads/bodies, malformed
//!   requests, and slow-loris reads yield structured `400`/`408`/`413`
//!   responses under read timeouts; simulator panics are isolated per job
//!   and answered with `500`.
//! * **Graceful shutdown.** SIGINT/SIGTERM (or `POST /v1/shutdown`) stops
//!   admissions, drains in-flight connections and every admitted job,
//!   then joins all threads.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod event_loop;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod persist;
pub mod poll;
pub mod queue;
pub mod server;
pub mod signal;
pub mod timer;
pub mod wire;

pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use persist::DiskTier;
pub use server::{serve_until_shutdown, spec_for_request, Server, ServerConfig};
