//! Microbenchmarks for the warm request path, printed with
//! `--nocapture`. No timing assertions (CI machines vary); these exist
//! to make hot-path regressions one command to spot — the first run
//! caught `parse_run_request` constructing all 16 workloads (72 µs) per
//! request just to validate the app name.
use std::time::Instant;

use regmutex_server::http::{self, Limits, Response};
use regmutex_server::json;

#[test]
fn hot_path_micro() {
    let body = br#"{"app":"Gaussian","technique":"baseline"}"#;
    let raw = format!(
        "POST /v1/run HTTP/1.1\r\nhost: 127.0.0.1:8177\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
        body.len()
    );
    let mut req_bytes = raw.into_bytes();
    req_bytes.extend_from_slice(body);
    let limits = Limits::default();

    const N: u32 = 100_000;

    let t = Instant::now();
    for _ in 0..N {
        let r = http::parse_request_buf(&req_bytes, &limits)
            .unwrap()
            .unwrap();
        std::hint::black_box(r);
    }
    eprintln!("parse_request_buf: {:?}/iter", t.elapsed() / N);

    let t = Instant::now();
    for _ in 0..N {
        let v = json::parse(core::str::from_utf8(body).unwrap()).unwrap();
        std::hint::black_box(v);
    }
    eprintln!("json::parse body: {:?}/iter", t.elapsed() / N);

    let parsed = json::parse(core::str::from_utf8(body).unwrap()).unwrap();
    let t = Instant::now();
    for _ in 0..N {
        let r = regmutex_server::wire::parse_run_request(&parsed).unwrap();
        std::hint::black_box(r);
    }
    eprintln!("parse_run_request: {:?}/iter", t.elapsed() / N);

    let resp_body = r#"{"app":"Gaussian","technique":"baseline","cached":true,"stats":{"cycles":123456,"instructions":9999}}"#;
    let t = Instant::now();
    for _ in 0..N {
        let resp = Response::json(200, resp_body.to_string());
        let b = http::encode_response(&resp, true);
        std::hint::black_box(b);
    }
    eprintln!("Response+encode: {:?}/iter", t.elapsed() / N);
}

#[test]
fn pipelined_route_cost() {
    use regmutex_server::http::HttpClient;
    use regmutex_server::server::{Server, ServerConfig};
    use std::time::Duration;

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        sim_workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = HttpClient::new(
        server.local_addr().to_string(),
        Duration::from_secs(10),
        true,
    );
    let run = br#"{"app":"Gaussian","technique":"baseline"}"# as &[u8];
    client.request("POST", "/v1/run", Some(run)).unwrap(); // warm

    const ROUNDS: u32 = 300;
    let healthz: Vec<&[u8]> = vec![&[]; 16];
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let r = client.request_batch("GET", "/healthz", &healthz).unwrap();
        assert_eq!(r.len(), 16);
    }
    eprintln!("healthz batch16: {:?}/req", t.elapsed() / (ROUNDS * 16));

    let runs: Vec<&[u8]> = vec![run; 16];
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let r = client.request_batch("POST", "/v1/run", &runs).unwrap();
        assert_eq!(r.len(), 16);
    }
    eprintln!("warm run batch16: {:?}/req", t.elapsed() / (ROUNDS * 16));
    server.shutdown_and_wait();
}
