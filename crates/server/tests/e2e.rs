//! End-to-end tests: a real server on an ephemeral port, driven over real
//! sockets — the same path `regmutex-cli serve` exercises.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use regmutex_server::http::{client_request, ClientResponse, HttpClient, Limits};
use regmutex_server::json::{self, Json};
use regmutex_server::{run_loadgen, LoadgenConfig, Server, ServerConfig};

fn start(workers: usize, queue: usize) -> Server {
    start_with(workers, queue, Limits::default())
}

fn start_with(workers: usize, queue: usize, limits: Limits) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sim_workers: workers,
        queue_capacity: queue,
        limits,
        ..ServerConfig::default()
    })
    .expect("bind test server")
}

fn call(server: &Server, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    client_request(
        server.local_addr(),
        method,
        path,
        body.map(str::as_bytes),
        Duration::from_secs(120),
    )
    .expect("request completes")
}

fn body_json(resp: &ClientResponse) -> Json {
    json::parse(core::str::from_utf8(&resp.body).expect("UTF-8 body")).expect("JSON body")
}

/// Poll `/metrics` until `line` appears (gauge transitions are racy to
/// observe exactly once; polling makes the tests deterministic).
fn wait_for_metric(server: &Server, line: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = call(server, "GET", "/metrics", None);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        if text.lines().any(|l| l == line) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for metric line {line:?};\n{text}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn health_workloads_run_and_cache_roundtrip() {
    let server = start(1, 8);

    let health = call(&server, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(
        body_json(&health).get("status").and_then(Json::as_str),
        Some("ok")
    );

    let workloads = call(&server, "GET", "/v1/workloads", None);
    assert_eq!(workloads.status, 200);
    assert_eq!(body_json(&workloads).as_arr().unwrap().len(), 16);

    let req = r#"{"app":"Gaussian","technique":"baseline"}"#;
    let cold = call(&server, "POST", "/v1/run", Some(req));
    assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
    let cold_json = body_json(&cold);
    assert_eq!(cold_json.get("cached").and_then(Json::as_bool), Some(false));
    let cold_checksum = cold_json
        .get("checksum")
        .and_then(Json::as_str)
        .expect("checksum present")
        .to_string();
    assert!(cold_checksum.starts_with("0x"), "{cold_checksum}");

    let warm = call(&server, "POST", "/v1/run", Some(req));
    assert_eq!(warm.status, 200);
    let warm_json = body_json(&warm);
    assert_eq!(warm_json.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm_json.get("checksum").and_then(Json::as_str),
        Some(cold_checksum.as_str()),
        "cache must return the identical result"
    );

    server.shutdown_and_wait();
}

#[test]
fn structured_errors_not_panics() {
    let server = start(1, 8);

    // Unknown workload and unknown technique: 400 with an `error` field.
    for bad in [
        r#"{"app":"NoSuchApp"}"#,
        r#"{"app":"Gaussian","technique":"warpdrive"}"#,
        r#"{"app":"Gaussian","bogus_field":1}"#,
        r#"this is not json"#,
        r#""#,
    ] {
        let resp = call(&server, "POST", "/v1/run", Some(bad));
        assert_eq!(resp.status, 400, "{bad}");
        assert!(
            body_json(&resp)
                .get("error")
                .and_then(Json::as_str)
                .is_some(),
            "{bad}"
        );
    }

    // A cycle budget too small to finish: the watchdog converts it into a
    // structured simulation error (422), not a hang.
    let resp = call(
        &server,
        "POST",
        "/v1/run",
        Some(r#"{"app":"Gaussian","technique":"baseline","cycle_budget":10}"#),
    );
    assert_eq!(resp.status, 422, "{}", String::from_utf8_lossy(&resp.body));

    // Unknown route and bad method.
    assert_eq!(call(&server, "GET", "/v1/nope", None).status, 404);
    assert_eq!(call(&server, "PUT", "/v1/run", Some("{}")).status, 405);

    // The server is still healthy after all of that.
    assert_eq!(call(&server, "GET", "/healthz", None).status, 200);
    server.shutdown_and_wait();
}

#[test]
fn sweep_reports_baseline_relative_rows() {
    let server = start(1, 8);
    let resp = call(
        &server,
        "POST",
        "/v1/sweep",
        Some(r#"{"app":"Gaussian","es":[2,4]}"#),
    );
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v = body_json(&resp);
    assert!(
        v.get("baseline")
            .and_then(|b| b.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let rows = v.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert!(row.get("es").and_then(Json::as_u64).is_some());
        assert!(
            row.get("cycles").is_some() || row.get("error").is_some(),
            "row must either simulate or carry a structured error"
        );
    }
    server.shutdown_and_wait();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One worker, one queue slot: occupy the worker, fill the slot, then
    // the third job must be refused with backpressure.
    let server = start(1, 1);
    let addr = server.local_addr();

    let slow = |app: &'static str| {
        std::thread::spawn(move || {
            client_request(
                addr,
                "POST",
                "/v1/run",
                Some(format!(r#"{{"app":"{app}","technique":"regmutex"}}"#).as_bytes()),
                Duration::from_secs(120),
            )
            .expect("slow job completes")
        })
    };

    let a = slow("SPMV");
    wait_for_metric(&server, "regmutex_inflight_jobs 1");
    let b = slow("MRI-Q");
    wait_for_metric(&server, "regmutex_queue_depth 1");

    let refused = call(
        &server,
        "POST",
        "/v1/run",
        Some(r#"{"app":"Gaussian","technique":"baseline"}"#),
    );
    assert_eq!(refused.status, 429);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(body_json(&refused).get("error").is_some());

    // Nothing admitted was lost: both slow jobs still answer 200.
    assert_eq!(a.join().unwrap().status, 200);
    assert_eq!(b.join().unwrap().status, 200);
    server.shutdown_and_wait();
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let server = start(1, 4);
    let addr = server.local_addr();

    // Park a real job in flight, then begin the drain.
    let inflight = std::thread::spawn(move || {
        client_request(
            addr,
            "POST",
            "/v1/run",
            Some(br#"{"app":"BFS","technique":"baseline"}"#.as_slice()),
            Duration::from_secs(120),
        )
        .expect("in-flight job survives the drain")
    });
    wait_for_metric(&server, "regmutex_inflight_jobs 1");

    let resp = call(&server, "POST", "/v1/shutdown", None);
    assert_eq!(resp.status, 200);

    let health = call(&server, "GET", "/healthz", None);
    assert_eq!(
        body_json(&health).get("status").and_then(Json::as_str),
        Some("draining")
    );

    // New work is refused while draining…
    let refused = call(
        &server,
        "POST",
        "/v1/run",
        Some(r#"{"app":"Gaussian","technique":"baseline"}"#),
    );
    assert_eq!(refused.status, 503);

    // …but the admitted job completes with a full response.
    server.shutdown_and_wait();
    assert_eq!(inflight.join().unwrap().status, 200);
}

#[test]
fn loadgen_closed_loop_drops_nothing_and_hits_cache() {
    let server = start(2, 16);
    let report = run_loadgen(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        threads: 3,
        requests: 8,
        seed: 7,
        timeout: Duration::from_secs(120),
        apps: vec!["Gaussian".into(), "SPMV".into()],
        ..LoadgenConfig::default()
    })
    .expect("loadgen runs");

    assert_eq!(report.total, 24);
    assert!(report.nothing_dropped(), "{report:?}");
    assert_eq!(report.failed, 0, "{report:?}");
    assert!(report.ok > 0, "{report:?}");
    // ≤ 4 distinct (app, technique) specs over 24 requests: the shared
    // cache must absorb the repeats.
    assert!(
        report.cache_hit_rate() > 0.5,
        "hit rate {:.2} too low: {report:?}",
        report.cache_hit_rate()
    );
    server.shutdown_and_wait();
}

/// Byte-level hostile input: raw socket writes that must yield structured
/// 4xx responses (or a clean close) — never a hang or a crash.
#[test]
fn bad_request_corpus_never_hangs() {
    let limits = Limits {
        read_timeout: Duration::from_millis(200),
        ..Limits::default()
    };
    let server = start_with(1, 4, limits);
    let addr = server.local_addr();

    let exchange = |raw: &[u8]| -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(raw).expect("write");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).to_string()
    };

    let status_of = |reply: &str| -> Option<u16> {
        reply
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .and_then(|s| s.parse().ok())
    };

    // (raw bytes, expected status; None = clean close acceptable)
    let corpus: Vec<(Vec<u8>, Option<u16>)> = vec![
        (b"\r\n\r\n".to_vec(), Some(400)),
        (b"GARBAGE\r\n\r\n".to_vec(), Some(400)),
        (b"GET\r\n\r\n".to_vec(), Some(400)),
        (b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(), Some(400)),
        (b"GET http://x/ HTTP/1.1\r\n\r\n".to_vec(), Some(400)),
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: nope\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"POST /v1/run HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"GET /healthz HTTP/1.1\r\nbad header no colon\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n".to_vec(),
            Some(413),
        ),
        (
            {
                // Head larger than the 8 KiB cap.
                let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
                for i in 0..600 {
                    raw.extend_from_slice(format!("x-filler-{i}: aaaaaaaaaaaaaaaa\r\n").as_bytes());
                }
                raw.extend_from_slice(b"\r\n");
                raw
            },
            Some(413),
        ),
        // Binary junk never completes a head: timeout, not a hang.
        (vec![0xff, 0xfe, 0x00, 0x01, 0x02], Some(408)),
        // Slow loris: an unfinished head must time out (408), not hang.
        (b"GET /healthz HTTP/1.1\r\nx-partial: ".to_vec(), Some(408)),
        // Declared body never sent: read timeout again.
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".to_vec(),
            Some(408),
        ),
    ];

    for (raw, expected) in &corpus {
        let reply = exchange(raw);
        let got = status_of(&reply);
        if let Some(want) = expected {
            assert_eq!(
                got,
                Some(*want),
                "raw {:?} → reply {:?}",
                String::from_utf8_lossy(raw),
                reply
            );
        }
    }

    // After the whole corpus the server still serves real traffic.
    let health = call(&server, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    server.shutdown_and_wait();
}

#[test]
fn fuzz_endpoint_runs_a_shard_and_validates_input() {
    let server = start(1, 8);

    // Missing/invalid fields: structured 400s.
    for bad in [
        r#"{"count":5}"#,
        r#"{"seed":1}"#,
        r#"{"seed":1,"count":0}"#,
        r#"{"seed":1,"count":200000}"#,
        r#"{"seed":"zz","count":5}"#,
    ] {
        let resp = call(&server, "POST", "/v1/fuzz", Some(bad));
        assert_eq!(resp.status, 400, "{bad}");
        assert!(body_json(&resp).get("error").is_some(), "{bad}");
    }

    // A tiny shard completes and reports campaign stats.
    let resp = call(
        &server,
        "POST",
        "/v1/fuzz",
        Some(r#"{"seed":"0xfeed","start":3,"count":4}"#),
    );
    assert_eq!(
        resp.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    let body = body_json(&resp);
    assert_eq!(body.get("kernels").and_then(Json::as_u64), Some(4));
    assert_eq!(body.get("start").and_then(Json::as_u64), Some(3));
    assert_eq!(body.get("divergences").and_then(Json::as_u64), Some(0));
    assert!(body.get("elapsed_ms").is_some());

    server.shutdown_and_wait();
}

#[test]
fn keep_alive_reuses_one_connection_across_requests() {
    let server = start(1, 8);
    let mut client = HttpClient::new(
        server.local_addr().to_string(),
        Duration::from_secs(120),
        true,
    );

    let run = r#"{"app":"Gaussian","technique":"baseline"}"#;
    for _ in 0..3 {
        let resp = client
            .request("POST", "/v1/run", Some(run.as_bytes()))
            .expect("run over keep-alive");
        assert_eq!(resp.status, 200);
    }
    for _ in 0..3 {
        let resp = client
            .request("GET", "/healthz", None)
            .expect("healthz over keep-alive");
        assert_eq!(resp.status, 200);
    }
    assert_eq!(client.connections_opened, 1, "all six requests, one socket");
    assert_eq!(client.conn_request_counts(), vec![6]);

    // Without keep-alive every request opens its own connection.
    let mut oneshot = HttpClient::new(
        server.local_addr().to_string(),
        Duration::from_secs(120),
        false,
    );
    for _ in 0..2 {
        assert_eq!(
            oneshot.request("GET", "/healthz", None).unwrap().status,
            200
        );
    }
    assert_eq!(oneshot.connections_opened, 2);
    assert_eq!(oneshot.conn_request_counts(), vec![1, 1]);

    server.shutdown_and_wait();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = start(1, 8);
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Three requests in one write; the middle one is distinguishable by
    // status so reordering can't go unnoticed.
    let batch = b"GET /healthz HTTP/1.1\r\n\r\n\
                  GET /v1/nope HTTP/1.1\r\n\r\n\
                  GET /v1/workloads HTTP/1.1\r\nconnection: close\r\n\r\n";
    s.write_all(batch).expect("pipelined write");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read all responses");
    let reply = String::from_utf8_lossy(&out);

    let statuses: Vec<&str> = reply
        .match_indices("HTTP/1.1 ")
        .map(|(i, _)| &reply[i + 9..i + 12])
        .collect();
    assert_eq!(statuses, vec!["200", "404", "200"], "{reply}");
    server.shutdown_and_wait();
}

#[test]
fn pipelining_deeper_than_the_server_window_still_answers_everything() {
    // A burst deeper than max_pipeline (8) parks the excess bytes in the
    // connection's read buffer with no further EPOLLIN coming (the peer
    // is waiting on these very responses) — the loop must re-parse as
    // the window drains, and must not 408 the parked complete requests.
    let server = start(1, 8);
    let mut client = HttpClient::new(
        server.local_addr().to_string(),
        Duration::from_secs(30),
        true,
    );
    let body = br#"{"app":"Gaussian","technique":"baseline"}"# as &[u8];
    assert_eq!(
        client
            .request("POST", "/v1/run", Some(body))
            .unwrap()
            .status,
        200
    );

    let batch: Vec<&[u8]> = vec![body; 32];
    let resps = client
        .request_batch("POST", "/v1/run", &batch)
        .expect("deep pipelined batch");
    assert_eq!(resps.len(), 32);
    assert!(resps.iter().all(|r| r.status == 200), "all 200s");
    assert_eq!(client.connections_opened, 1, "one connection throughout");
    server.shutdown_and_wait();
}

#[test]
fn streamed_sweep_concatenates_to_the_buffered_body() {
    let server = start(1, 8);
    let sweep = r#"{"app":"Gaussian","es":[2,4]}"#;

    // Warm every (app, es) result first so both passes below are fully
    // cached — otherwise the `cached` flags in the rows would differ.
    assert_eq!(call(&server, "POST", "/v1/sweep", Some(sweep)).status, 200);

    let streamed = call(&server, "POST", "/v1/sweep", Some(sweep));
    assert_eq!(streamed.status, 200);
    assert_eq!(streamed.header("transfer-encoding"), Some("chunked"));

    let buffered = call(
        &server,
        "POST",
        "/v1/sweep",
        Some(r#"{"app":"Gaussian","es":[2,4],"stream":false}"#),
    );
    assert_eq!(buffered.status, 200);
    assert_eq!(buffered.header("transfer-encoding"), None);

    assert_eq!(
        streamed.body, buffered.body,
        "chunked concatenation must be byte-identical to the buffered body"
    );
    // And the body is one valid sweep document.
    let v = body_json(&streamed);
    assert_eq!(
        v.get("rows").and_then(Json::as_arr).map(|r| r.len()),
        Some(2)
    );
    server.shutdown_and_wait();
}

/// Corpus extensions for the event loop: fragmented heads, pipelined
/// garbage, oversized chunk extensions, and dripped headers.
#[test]
fn fragmented_and_pipelined_hostile_input() {
    let limits = Limits {
        read_timeout: Duration::from_millis(300),
        ..Limits::default()
    };
    let server = start_with(1, 4, limits);
    let addr = server.local_addr();

    // A head split mid-header across packets parses once completed.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /healthz HTT").unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        s.write_all(b"P/1.1\r\nx-split: mid-hea").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        s.write_all(b"der\r\nconnection: close\r\n\r\n").unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        let reply = String::from_utf8_lossy(&out);
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    }

    // Garbage pipelined after a valid request: the valid one answers 200,
    // the garbage answers 400, then the connection closes.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGARBAGE\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        let reply = String::from_utf8_lossy(&out);
        let statuses: Vec<&str> = reply
            .match_indices("HTTP/1.1 ")
            .map(|(i, _)| &reply[i + 9..i + 12])
            .collect();
        assert_eq!(statuses, vec!["200", "400"], "{reply}");
    }

    // A chunked body with an oversized chunk extension: rejected with a
    // structured 400 (chunked request bodies are not accepted), no hang.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut raw = b"POST /v1/run HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0;".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 4096));
        raw.extend_from_slice(b"\r\n\r\n");
        let _ = s.write_all(&raw);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let reply = String::from_utf8_lossy(&out);
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    }

    // Slow-drip header bytes: each write arrives before a per-read
    // timeout would fire, but the *absolute* request deadline still does
    // — SO_RCVTIMEO could be reset forever, the timer wheel cannot.
    {
        let started = Instant::now();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for chunk in [b"G", b"E", b"T", b" ", b"/", b"h", b"e", b"a"] {
            if s.write_all(chunk).is_err() {
                break; // server already answered 408 and closed
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let reply = String::from_utf8_lossy(&out);
        assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drip must be cut off by the deadline, not a long stall"
        );
    }

    // The server survives all of it.
    assert_eq!(call(&server, "GET", "/healthz", None).status, 200);
    server.shutdown_and_wait();
}

#[test]
fn per_client_token_bucket_throttles_with_retry_after() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sim_workers: 1,
        queue_capacity: 8,
        client_rate: 1.0,
        client_burst: 1.0,
        ..ServerConfig::default()
    })
    .expect("bind test server");

    let run = r#"{"app":"Gaussian","technique":"baseline"}"#;
    let first = call(&server, "POST", "/v1/run", Some(run));
    assert_eq!(first.status, 200, "burst allows the first request");

    let mut throttled = 0;
    for _ in 0..3 {
        let resp = call(&server, "POST", "/v1/run", Some(run));
        if resp.status == 429 {
            assert!(resp.header("retry-after").is_some());
            assert!(body_json(&resp).get("error").is_some());
            throttled += 1;
        }
    }
    assert!(throttled > 0, "same-client burst must hit the token bucket");

    // Health and metrics are never throttled, and the throttle is counted.
    let health = call(&server, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    let h = body_json(&health);
    assert!(h.get("throttled_total").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown_and_wait();
}

#[test]
fn drain_finishes_streamed_sweep_and_closes_idle_keepalive() {
    let server = start(1, 8);
    let addr = server.local_addr();

    // One idle keep-alive connection, already past its first exchange.
    let mut idle = TcpStream::connect(addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    idle.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut first = vec![0u8; 4096];
    let n = idle.read(&mut first).expect("idle first response");
    assert!(n > 0);

    // One streamed sweep in flight while the drain begins.
    let streamer = std::thread::spawn(move || {
        client_request(
            addr,
            "POST",
            "/v1/sweep",
            Some(br#"{"app":"SPMV","es":[2,4,8]}"#.as_slice()),
            Duration::from_secs(120),
        )
        .expect("in-flight streamed sweep survives the drain")
    });
    wait_for_metric(&server, "regmutex_inflight_jobs 1");

    assert_eq!(call(&server, "POST", "/v1/shutdown", None).status, 200);
    server.shutdown_and_wait();

    // Every admitted sweep point was simulated and streamed back whole.
    let resp = streamer.join().unwrap();
    assert_eq!(resp.status, 200);
    let v = body_json(&resp);
    assert_eq!(
        v.get("rows").and_then(Json::as_arr).map(|r| r.len()),
        Some(3)
    );

    // The idle connection was closed promptly, not abandoned: the next
    // read sees EOF (or a reset), never a hang.
    let mut buf = [0u8; 64];
    match idle.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => {
            // Tolerate a final in-flight response fragment, then EOF.
            assert!(n <= buf.len());
            assert_eq!(idle.read(&mut buf).unwrap_or(0), 0, "EOF after drain");
        }
        Err(_) => {} // reset is an acceptable close
    }
}

#[test]
fn healthz_and_metrics_surface_the_connection_series() {
    let server = start(1, 8);

    // Generate a little of everything: runs over keep-alive + a stream.
    let mut client = HttpClient::new(
        server.local_addr().to_string(),
        Duration::from_secs(120),
        true,
    );
    let run = r#"{"app":"Gaussian","technique":"baseline"}"#;
    for _ in 0..2 {
        assert_eq!(
            client
                .request("POST", "/v1/run", Some(run.as_bytes()))
                .unwrap()
                .status,
            200
        );
    }
    let sweep = call(
        &server,
        "POST",
        "/v1/sweep",
        Some(r#"{"app":"Gaussian","es":[2]}"#),
    );
    assert_eq!(sweep.status, 200);

    let health = body_json(&call(&server, "GET", "/healthz", None));
    for key in [
        "active_connections",
        "pipeline_depth",
        "throttled_total",
        "streamed_rows_total",
    ] {
        assert!(health.get(key).and_then(Json::as_u64).is_some(), "{key}");
    }
    assert!(
        health
            .get("streamed_rows_total")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );

    let metrics = call(&server, "GET", "/metrics", None);
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    for series in [
        "regmutex_http_connections_active",
        "regmutex_http_pipeline_depth",
        "regmutex_http_throttled_total",
        "regmutex_http_streamed_rows_total",
        "regmutex_http_requests_per_connection_bucket",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    server.shutdown_and_wait();
}

#[test]
fn fuzz_progress_mode_streams_ndjson() {
    let server = start(1, 8);
    let resp = call(
        &server,
        "POST",
        "/v1/fuzz",
        Some(r#"{"seed":"0xfeed","count":4,"progress":true}"#),
    );
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.header("content-type"), Some("application/x-ndjson"));

    let text = core::str::from_utf8(&resp.body).expect("UTF-8 NDJSON");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 2, "progress + final report: {text}");
    for line in &lines {
        json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
    }
    let progress = json::parse(lines[0]).unwrap();
    assert_eq!(
        progress.get("event").and_then(Json::as_str),
        Some("progress"),
        "{text}"
    );
    let last = json::parse(lines[lines.len() - 1]).unwrap();
    assert_eq!(last.get("kernels").and_then(Json::as_u64), Some(4));
    assert_eq!(last.get("divergences").and_then(Json::as_u64), Some(0));
    server.shutdown_and_wait();
}
