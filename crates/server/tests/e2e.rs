//! End-to-end tests: a real server on an ephemeral port, driven over real
//! sockets — the same path `regmutex-cli serve` exercises.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use regmutex_server::http::{client_request, ClientResponse, Limits};
use regmutex_server::json::{self, Json};
use regmutex_server::{run_loadgen, LoadgenConfig, Server, ServerConfig};

fn start(workers: usize, queue: usize) -> Server {
    start_with(workers, queue, Limits::default())
}

fn start_with(workers: usize, queue: usize, limits: Limits) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        sim_workers: workers,
        queue_capacity: queue,
        limits,
        ..ServerConfig::default()
    })
    .expect("bind test server")
}

fn call(server: &Server, method: &str, path: &str, body: Option<&str>) -> ClientResponse {
    client_request(
        server.local_addr(),
        method,
        path,
        body.map(str::as_bytes),
        Duration::from_secs(120),
    )
    .expect("request completes")
}

fn body_json(resp: &ClientResponse) -> Json {
    json::parse(core::str::from_utf8(&resp.body).expect("UTF-8 body")).expect("JSON body")
}

/// Poll `/metrics` until `line` appears (gauge transitions are racy to
/// observe exactly once; polling makes the tests deterministic).
fn wait_for_metric(server: &Server, line: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = call(server, "GET", "/metrics", None);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        if text.lines().any(|l| l == line) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for metric line {line:?};\n{text}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn health_workloads_run_and_cache_roundtrip() {
    let server = start(1, 8);

    let health = call(&server, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(
        body_json(&health).get("status").and_then(Json::as_str),
        Some("ok")
    );

    let workloads = call(&server, "GET", "/v1/workloads", None);
    assert_eq!(workloads.status, 200);
    assert_eq!(body_json(&workloads).as_arr().unwrap().len(), 16);

    let req = r#"{"app":"Gaussian","technique":"baseline"}"#;
    let cold = call(&server, "POST", "/v1/run", Some(req));
    assert_eq!(cold.status, 200, "{}", String::from_utf8_lossy(&cold.body));
    let cold_json = body_json(&cold);
    assert_eq!(cold_json.get("cached").and_then(Json::as_bool), Some(false));
    let cold_checksum = cold_json
        .get("checksum")
        .and_then(Json::as_str)
        .expect("checksum present")
        .to_string();
    assert!(cold_checksum.starts_with("0x"), "{cold_checksum}");

    let warm = call(&server, "POST", "/v1/run", Some(req));
    assert_eq!(warm.status, 200);
    let warm_json = body_json(&warm);
    assert_eq!(warm_json.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm_json.get("checksum").and_then(Json::as_str),
        Some(cold_checksum.as_str()),
        "cache must return the identical result"
    );

    server.shutdown_and_wait();
}

#[test]
fn structured_errors_not_panics() {
    let server = start(1, 8);

    // Unknown workload and unknown technique: 400 with an `error` field.
    for bad in [
        r#"{"app":"NoSuchApp"}"#,
        r#"{"app":"Gaussian","technique":"warpdrive"}"#,
        r#"{"app":"Gaussian","bogus_field":1}"#,
        r#"this is not json"#,
        r#""#,
    ] {
        let resp = call(&server, "POST", "/v1/run", Some(bad));
        assert_eq!(resp.status, 400, "{bad}");
        assert!(
            body_json(&resp)
                .get("error")
                .and_then(Json::as_str)
                .is_some(),
            "{bad}"
        );
    }

    // A cycle budget too small to finish: the watchdog converts it into a
    // structured simulation error (422), not a hang.
    let resp = call(
        &server,
        "POST",
        "/v1/run",
        Some(r#"{"app":"Gaussian","technique":"baseline","cycle_budget":10}"#),
    );
    assert_eq!(resp.status, 422, "{}", String::from_utf8_lossy(&resp.body));

    // Unknown route and bad method.
    assert_eq!(call(&server, "GET", "/v1/nope", None).status, 404);
    assert_eq!(call(&server, "PUT", "/v1/run", Some("{}")).status, 405);

    // The server is still healthy after all of that.
    assert_eq!(call(&server, "GET", "/healthz", None).status, 200);
    server.shutdown_and_wait();
}

#[test]
fn sweep_reports_baseline_relative_rows() {
    let server = start(1, 8);
    let resp = call(
        &server,
        "POST",
        "/v1/sweep",
        Some(r#"{"app":"Gaussian","es":[2,4]}"#),
    );
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v = body_json(&resp);
    assert!(
        v.get("baseline")
            .and_then(|b| b.get("cycles"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let rows = v.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert!(row.get("es").and_then(Json::as_u64).is_some());
        assert!(
            row.get("cycles").is_some() || row.get("error").is_some(),
            "row must either simulate or carry a structured error"
        );
    }
    server.shutdown_and_wait();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One worker, one queue slot: occupy the worker, fill the slot, then
    // the third job must be refused with backpressure.
    let server = start(1, 1);
    let addr = server.local_addr();

    let slow = |app: &'static str| {
        std::thread::spawn(move || {
            client_request(
                addr,
                "POST",
                "/v1/run",
                Some(format!(r#"{{"app":"{app}","technique":"regmutex"}}"#).as_bytes()),
                Duration::from_secs(120),
            )
            .expect("slow job completes")
        })
    };

    let a = slow("SPMV");
    wait_for_metric(&server, "regmutex_inflight_jobs 1");
    let b = slow("MRI-Q");
    wait_for_metric(&server, "regmutex_queue_depth 1");

    let refused = call(
        &server,
        "POST",
        "/v1/run",
        Some(r#"{"app":"Gaussian","technique":"baseline"}"#),
    );
    assert_eq!(refused.status, 429);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert!(body_json(&refused).get("error").is_some());

    // Nothing admitted was lost: both slow jobs still answer 200.
    assert_eq!(a.join().unwrap().status, 200);
    assert_eq!(b.join().unwrap().status, 200);
    server.shutdown_and_wait();
}

#[test]
fn graceful_shutdown_drains_inflight_work() {
    let server = start(1, 4);
    let addr = server.local_addr();

    // Park a real job in flight, then begin the drain.
    let inflight = std::thread::spawn(move || {
        client_request(
            addr,
            "POST",
            "/v1/run",
            Some(br#"{"app":"BFS","technique":"baseline"}"#.as_slice()),
            Duration::from_secs(120),
        )
        .expect("in-flight job survives the drain")
    });
    wait_for_metric(&server, "regmutex_inflight_jobs 1");

    let resp = call(&server, "POST", "/v1/shutdown", None);
    assert_eq!(resp.status, 200);

    let health = call(&server, "GET", "/healthz", None);
    assert_eq!(
        body_json(&health).get("status").and_then(Json::as_str),
        Some("draining")
    );

    // New work is refused while draining…
    let refused = call(
        &server,
        "POST",
        "/v1/run",
        Some(r#"{"app":"Gaussian","technique":"baseline"}"#),
    );
    assert_eq!(refused.status, 503);

    // …but the admitted job completes with a full response.
    server.shutdown_and_wait();
    assert_eq!(inflight.join().unwrap().status, 200);
}

#[test]
fn loadgen_closed_loop_drops_nothing_and_hits_cache() {
    let server = start(2, 16);
    let report = run_loadgen(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        threads: 3,
        requests: 8,
        seed: 7,
        timeout: Duration::from_secs(120),
        apps: vec!["Gaussian".into(), "SPMV".into()],
        ..LoadgenConfig::default()
    })
    .expect("loadgen runs");

    assert_eq!(report.total, 24);
    assert!(report.nothing_dropped(), "{report:?}");
    assert_eq!(report.failed, 0, "{report:?}");
    assert!(report.ok > 0, "{report:?}");
    // ≤ 4 distinct (app, technique) specs over 24 requests: the shared
    // cache must absorb the repeats.
    assert!(
        report.cache_hit_rate() > 0.5,
        "hit rate {:.2} too low: {report:?}",
        report.cache_hit_rate()
    );
    server.shutdown_and_wait();
}

/// Byte-level hostile input: raw socket writes that must yield structured
/// 4xx responses (or a clean close) — never a hang or a crash.
#[test]
fn bad_request_corpus_never_hangs() {
    let limits = Limits {
        read_timeout: Duration::from_millis(200),
        ..Limits::default()
    };
    let server = start_with(1, 4, limits);
    let addr = server.local_addr();

    let exchange = |raw: &[u8]| -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(raw).expect("write");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).to_string()
    };

    let status_of = |reply: &str| -> Option<u16> {
        reply
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .and_then(|s| s.parse().ok())
    };

    // (raw bytes, expected status; None = clean close acceptable)
    let corpus: Vec<(Vec<u8>, Option<u16>)> = vec![
        (b"\r\n\r\n".to_vec(), Some(400)),
        (b"GARBAGE\r\n\r\n".to_vec(), Some(400)),
        (b"GET\r\n\r\n".to_vec(), Some(400)),
        (b"GET /healthz HTTP/9.9\r\n\r\n".to_vec(), Some(400)),
        (b"GET http://x/ HTTP/1.1\r\n\r\n".to_vec(), Some(400)),
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: nope\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"POST /v1/run HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"GET /healthz HTTP/1.1\r\nbad header no colon\r\n\r\n".to_vec(),
            Some(400),
        ),
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n".to_vec(),
            Some(413),
        ),
        (
            {
                // Head larger than the 8 KiB cap.
                let mut raw = b"GET /healthz HTTP/1.1\r\n".to_vec();
                for i in 0..600 {
                    raw.extend_from_slice(format!("x-filler-{i}: aaaaaaaaaaaaaaaa\r\n").as_bytes());
                }
                raw.extend_from_slice(b"\r\n");
                raw
            },
            Some(413),
        ),
        // Binary junk never completes a head: timeout, not a hang.
        (vec![0xff, 0xfe, 0x00, 0x01, 0x02], Some(408)),
        // Slow loris: an unfinished head must time out (408), not hang.
        (b"GET /healthz HTTP/1.1\r\nx-partial: ".to_vec(), Some(408)),
        // Declared body never sent: read timeout again.
        (
            b"POST /v1/run HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc".to_vec(),
            Some(408),
        ),
    ];

    for (raw, expected) in &corpus {
        let reply = exchange(raw);
        let got = status_of(&reply);
        if let Some(want) = expected {
            assert_eq!(
                got,
                Some(*want),
                "raw {:?} → reply {:?}",
                String::from_utf8_lossy(raw),
                reply
            );
        }
    }

    // After the whole corpus the server still serves real traffic.
    let health = call(&server, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    server.shutdown_and_wait();
}

#[test]
fn fuzz_endpoint_runs_a_shard_and_validates_input() {
    let server = start(1, 8);

    // Missing/invalid fields: structured 400s.
    for bad in [
        r#"{"count":5}"#,
        r#"{"seed":1}"#,
        r#"{"seed":1,"count":0}"#,
        r#"{"seed":1,"count":200000}"#,
        r#"{"seed":"zz","count":5}"#,
    ] {
        let resp = call(&server, "POST", "/v1/fuzz", Some(bad));
        assert_eq!(resp.status, 400, "{bad}");
        assert!(body_json(&resp).get("error").is_some(), "{bad}");
    }

    // A tiny shard completes and reports campaign stats.
    let resp = call(
        &server,
        "POST",
        "/v1/fuzz",
        Some(r#"{"seed":"0xfeed","start":3,"count":4}"#),
    );
    assert_eq!(
        resp.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    let body = body_json(&resp);
    assert_eq!(body.get("kernels").and_then(Json::as_u64), Some(4));
    assert_eq!(body.get("start").and_then(Json::as_u64), Some(3));
    assert_eq!(body.get("divergences").and_then(Json::as_u64), Some(0));
    assert!(body.get("elapsed_ms").is_some());

    server.shutdown_and_wait();
}
