//! End-to-end fleet test against *real* `regmutex-cli serve` processes.
//!
//! Three "workers" join the fleet: a real server that gets SIGKILLed
//! mid-sweep, a hung socket that accepts connections and never replies
//! (a worker wedged hard enough that even its TCP stack still answers),
//! and one healthy real server. The coordinator must ride out both —
//! the merged sweep output byte-identical to a local single-process
//! run, with zero lost jobs.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use regmutex_bench::{Fig07Source, JobExecutor, JobSource, Runner};
use regmutex_fleet::{BackoffPolicy, Coordinator, FleetConfig};

/// Reap the child on scope exit so a failing assertion never leaks a
/// live server process past the test run.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Boot `regmutex-cli serve` on an ephemeral port and parse the bound
/// address from its banner line.
fn spawn_worker() -> (KillOnDrop, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_regmutex-cli"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn regmutex-cli serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints its banner before exiting")
            .expect("readable stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after the scheme")
                .to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (KillOnDrop(child), addr)
}

/// A socket that accepts and then never replies — connections neither
/// progress nor fail, so only the client's deadline can save it.
fn hung_socket() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind hung socket");
    let addr = listener.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for conn in listener.incoming() {
            match conn {
                Ok(s) => held.push(s),
                Err(_) => break,
            }
        }
    });
    addr
}

#[test]
fn fleet_survives_sigkill_and_hung_socket_with_byte_identical_output() {
    let source = Fig07Source;
    let jobs = source.jobs();
    let local = Runner::new(2).execute(&jobs).expect("local run");
    let (local_text, local_code) = source.render(&jobs, &local);
    assert_eq!(local_code, 0, "local fig07 must be clean:\n{local_text}");

    let (victim, victim_addr) = spawn_worker();
    let (_healthy, healthy_addr) = spawn_worker();
    let hung_addr = hung_socket();

    let coordinator = Coordinator::new(FleetConfig {
        workers: vec![victim_addr, hung_addr, healthy_addr],
        dispatch_threads: 4,
        max_attempts: 4,
        failure_threshold: 2,
        deadline_base: Duration::from_millis(500),
        deadline_cap: Duration::from_secs(3),
        backoff: BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
        },
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(200),
        ..FleetConfig::default()
    })
    .expect("non-empty fleet");

    // SIGKILL the victim mid-sweep: some of its jobs may already have
    // completed, the rest must be re-dispatched. `kill -9` by pid keeps
    // the Child reapable by the KillOnDrop guard afterwards.
    let victim_pid = victim.0.id();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let _ = Command::new("kill")
            .args(["-9", &victim_pid.to_string()])
            .status();
    });

    let results = coordinator.execute(&jobs).expect("fleet run");
    killer.join().expect("killer thread");

    let (fleet_text, fleet_code) = source.render(&jobs, &results);
    assert_eq!(
        fleet_code, 0,
        "no give-ups despite SIGKILL + hung socket:\n{fleet_text}"
    );
    assert_eq!(
        fleet_text, local_text,
        "fleet output must be byte-identical to the local run"
    );

    use std::sync::atomic::Ordering::Relaxed;
    let m = coordinator.metrics();
    assert_eq!(m.gave_up.load(Relaxed), 0, "zero lost jobs");
    assert!(
        m.worker_faults.load(Relaxed) > 0,
        "the hung socket and the SIGKILL must both have registered"
    );
    assert!(m.redispatches.load(Relaxed) > 0);
    assert!(
        coordinator.workers()[1].is_quarantined(),
        "the hung socket should be quarantined by its strike count"
    );
}
