//! Crash-kill end-to-end tests for the durable campaign state.
//!
//! The adversarial contract from the durability design: a campaign that
//! is SIGKILLed at an arbitrary point — including mid-record writes —
//! and then resumed must produce final output *byte-identical* to an
//! uninterrupted golden run, or refuse with a diagnosis. Never silent
//! divergence. Each test kills a real `regmutex-cli` process at several
//! pseudo-randomized points (seeded from the clock, printed for
//! reproducibility), resumes, and byte-diffs.

use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use std::io::{BufRead, BufReader};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regmutex-cli"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("rmx-durable-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A tiny deterministic PRNG seeded from the wall clock; the seed is
/// printed so a failing schedule can be replayed by hand.
struct Rng(u64);

impl Rng {
    fn from_clock(tag: &str) -> Rng {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("clock after epoch")
            .subsec_nanos() as u64
            | 1;
        eprintln!("[{tag}] kill-schedule seed: {seed:#x}");
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        // splitmix64 step — quality is irrelevant, variety is the point.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A kill delay between 10% and 80% of the golden wall time.
    fn kill_delay(&mut self, golden: Duration) -> Duration {
        let frac = 10 + self.next() % 71; // 10..=80 percent
        golden.mul_f64(frac as f64 / 100.0)
    }
}

/// Spawn `args`, send `signal` after `delay`, and reap. Returns the
/// process output; `None` exit status fields mean it died to the signal.
fn run_and_signal(args: &[&str], signal: &str, delay: Duration) -> Output {
    let child = cli()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn regmutex-cli");
    std::thread::sleep(delay);
    let _ = Command::new("kill")
        .args([signal, &child.id().to_string()])
        .status();
    child.wait_with_output().expect("reap child")
}

fn run_to_completion(args: &[&str]) -> Output {
    cli().args(args).output().expect("run regmutex-cli")
}

#[test]
fn fuzz_campaign_survives_sigkill_storm_byte_identically() {
    let dir = temp_dir("fuzz");
    let dir_s = dir.to_string_lossy().into_owned();
    let base = ["fuzz", "--seed", "0xc1", "--iters", "120", "--jobs", "2"];

    // The uninterrupted golden run (no journal anywhere near it).
    let t0 = Instant::now();
    let golden = run_to_completion(&base);
    let golden_wall = t0.elapsed();
    let golden_out = String::from_utf8(golden.stdout).expect("utf-8 report");
    assert!(
        golden_out.contains("verdict:"),
        "golden produced no report:\n{golden_out}"
    );

    let mut rng = Rng::from_clock("fuzz");
    let mut journaled: Vec<String> = base.iter().map(|s| s.to_string()).collect();
    journaled.extend(["--journal".to_string(), dir_s.clone()]);

    // Round 0 is a graceful SIGTERM (checkpoint-and-exit, satellite
    // path); rounds 1-2 are SIGKILL — no flush, torn tails allowed.
    for (round, sig) in ["-TERM", "-KILL", "-KILL"].iter().enumerate() {
        let mut args: Vec<&str> = journaled.iter().map(String::as_str).collect();
        if round > 0 {
            args.push("--resume");
        }
        let out = run_and_signal(&args, sig, rng.kill_delay(golden_wall));
        if out.status.success() {
            // The campaign outran the kill: its output must already be
            // golden, and the remaining rounds have nothing to interrupt.
            assert_eq!(
                String::from_utf8_lossy(&out.stdout),
                golden_out,
                "a completed round must match the golden run"
            );
            break;
        }
        if *sig == "-TERM" {
            // Graceful checkpoint: distinct exit code and a resume hint
            // (unless the signal landed before the handler installed).
            if let Some(code) = out.status.code() {
                let err = String::from_utf8_lossy(&out.stderr);
                assert_eq!(code, 4, "graceful checkpoint exit code; stderr: {err}");
                assert!(
                    err.contains("--resume"),
                    "checkpoint must print the resume hint: {err}"
                );
            }
        }
    }

    // Final resume: runs to completion and byte-matches the golden.
    let mut args: Vec<&str> = journaled.iter().map(String::as_str).collect();
    args.push("--resume");
    let fin = run_to_completion(&args);
    let fin_out = String::from_utf8_lossy(&fin.stdout);
    assert_eq!(
        fin.status.code(),
        golden.status.code(),
        "resumed exit code differs; stderr: {}",
        String::from_utf8_lossy(&fin.stderr)
    );
    assert_eq!(
        fin_out, golden_out,
        "resumed fuzz report must be byte-identical to the uninterrupted run"
    );

    // And a warm re-resume of the *finished* campaign is also identical.
    let again = run_to_completion(&args);
    assert_eq!(String::from_utf8_lossy(&again.stdout), golden_out);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reap the child on scope exit so a failing assertion never leaks a
/// live server process past the test run.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Boot `regmutex-cli serve` on an ephemeral port and parse the bound
/// address from its banner line.
fn spawn_worker() -> (KillOnDrop, String) {
    let mut child = cli()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn regmutex-cli serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints its banner before exiting")
            .expect("readable stdout");
        if let Some(rest) = line.split("listening on http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address after the scheme")
                .to_string();
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (KillOnDrop(child), addr)
}

#[test]
fn fleet_sweep_survives_coordinator_sigkills_byte_identically() {
    use regmutex_bench::{Fig07Source, JobExecutor, JobSource, Runner};

    // The golden is the local sweep: the fleet determinism contract says
    // the coordinator output is byte-identical to it at any worker count.
    let source = Fig07Source;
    let jobs = source.jobs();
    let t0 = Instant::now();
    let local = Runner::new(2).execute(&jobs).expect("local run");
    let golden_wall = t0.elapsed();
    let (golden_out, golden_code) = source.render(&jobs, &local);
    assert_eq!(golden_code, 0, "local fig07 must be clean:\n{golden_out}");

    let (_w1, addr1) = spawn_worker();
    let (_w2, addr2) = spawn_worker();
    let workers = format!("{addr1},{addr2}");

    let dir = temp_dir("fleet");
    let dir_s = dir.to_string_lossy().into_owned();
    let base = [
        "coordinator",
        "--workers",
        workers.as_str(),
        "--threads",
        "4",
        "--journal",
        dir_s.as_str(),
    ];

    // The coordinator process dies three times; the workers live on, so
    // each resume finds their caches warm *and* the journal's cursor.
    let mut rng = Rng::from_clock("fleet");
    for round in 0..3 {
        let mut args: Vec<&str> = base.to_vec();
        if round > 0 {
            args.push("--resume");
        }
        let out = run_and_signal(&args, "-KILL", rng.kill_delay(golden_wall));
        if out.status.success() {
            assert_eq!(
                String::from_utf8_lossy(&out.stdout),
                golden_out,
                "a completed round must match the golden run"
            );
            break;
        }
    }

    let mut args: Vec<&str> = base.to_vec();
    args.push("--resume");
    let fin = run_to_completion(&args);
    assert_eq!(
        fin.status.code(),
        Some(0),
        "final resume must complete; stderr: {}",
        String::from_utf8_lossy(&fin.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&fin.stdout),
        golden_out,
        "resumed fleet sweep must be byte-identical to the local golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
