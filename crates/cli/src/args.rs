//! Dependency-free argument parsing for the CLI.

use regmutex::Technique;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list` — print the workload registry.
    List {
        /// Emit the machine-readable JSON registry instead of the table.
        json: bool,
    },
    /// `disasm <app>` — print a kernel (optionally transformed / annotated).
    Disasm {
        /// Workload name.
        app: String,
        /// Show the RegMutex-transformed kernel instead of the original.
        transformed: bool,
        /// Annotate each instruction with its live-register count.
        liveness: bool,
    },
    /// `run <app>` — simulate one workload under one technique.
    Run {
        /// Workload name.
        app: String,
        /// Technique to run.
        technique: Technique,
        /// Use the half-size register file.
        half_rf: bool,
        /// Override the grid size.
        ctas: Option<u32>,
        /// Force a specific `|Es|`.
        force_es: Option<u16>,
        /// Override the absolute watchdog cycle bound.
        watchdog_cycles: Option<u64>,
        /// Override the no-progress detector's `gmem_latency` multiplier.
        stall_multiplier: Option<u32>,
        /// Disable event-driven cycle skipping (tick every cycle).
        no_cycle_skip: bool,
        /// Device-loop worker threads sharding the simulated SMs
        /// (default: `REGMUTEX_SM_WORKERS` or 1 = serial).
        sm_workers: Option<u32>,
    },
    /// `bench-loop` — wall-clock the simulation loop with cycle skipping
    /// on vs off over a workload basket; write `BENCH_simloop.json`.
    BenchLoop {
        /// Workload names; empty selects the default basket.
        apps: Vec<String>,
        /// Timed repetitions per configuration (median reported).
        iters: usize,
        /// Output path for the JSON report.
        out: String,
        /// Device-loop worker count for the parallel rows (default:
        /// `REGMUTEX_SM_WORKERS` or 4).
        sm_workers: Option<u32>,
    },
    /// `compare <app>` — run all techniques and print the comparison.
    Compare {
        /// Workload name.
        app: String,
        /// Use the half-size register file.
        half_rf: bool,
        /// Simulation worker threads (default: all cores).
        jobs: Option<usize>,
    },
    /// `trace <app>` — dump the Fig 1 live-register trace as CSV.
    Trace {
        /// Workload name.
        app: String,
        /// Maximum dynamic instructions.
        max_steps: usize,
    },
    /// `sweep <app>` — the Fig 10 |Es| sweep for one workload.
    Sweep {
        /// Workload name.
        app: String,
        /// Simulation worker threads (default: all cores).
        jobs: Option<usize>,
        /// Durable campaign directory (journal + result store).
        journal: Option<String>,
        /// Resume the journaled campaign instead of starting fresh.
        resume: bool,
    },
    /// `chaos [<app>...]` — a seeded fault-injection campaign against the
    /// safety net.
    Chaos {
        /// Workload names; empty selects the default six-workload mix.
        apps: Vec<String>,
        /// Seeds per `(workload, fault class, severity)` cell.
        seeds: u64,
        /// Technique whose manager the faults attack.
        technique: Technique,
        /// Simulation worker threads (default: all cores).
        jobs: Option<usize>,
        /// Override the absolute watchdog cycle bound.
        watchdog_cycles: Option<u64>,
        /// Override the no-progress detector's `gmem_latency` multiplier.
        stall_multiplier: Option<u32>,
        /// Fail (exit 1) unless every fault class was detected at least
        /// once.
        expect_detections: bool,
        /// Durable campaign directory (journal + result store).
        journal: Option<String>,
        /// Resume the journaled campaign instead of starting fresh.
        resume: bool,
    },
    /// `serve` — run the HTTP simulation service.
    Serve {
        /// Bind address (`host:port`).
        addr: String,
        /// Simulation worker threads (default: `REGMUTEX_JOBS` or all
        /// cores).
        workers: Option<usize>,
        /// Bounded job-queue capacity.
        queue: usize,
        /// Result-cache budget in MiB.
        cache_mb: usize,
        /// Cycle cap applied to every job.
        cycle_budget: Option<u64>,
        /// Maximum concurrent connections.
        max_connections: usize,
        /// Device-loop worker threads per simulation (default:
        /// `REGMUTEX_SM_WORKERS` or 1 = serial).
        sm_workers: Option<u32>,
        /// Per-client token-bucket rate in requests/second (0 = off).
        client_rate: f64,
        /// Per-client token-bucket burst size.
        client_burst: f64,
        /// Persist the result cache here; a restarted server warm-starts.
        cache_dir: Option<String>,
    },
    /// `loadgen` — closed-loop load generator against a running server,
    /// or (with `--fleet`) through the fault-tolerant coordinator.
    Loadgen {
        /// Server address (`host:port`).
        addr: String,
        /// Concurrent client threads.
        threads: usize,
        /// Requests per thread.
        requests: usize,
        /// Sampling seed.
        seed: u64,
        /// Restrict sampling to these workloads (comma-separated).
        apps: Vec<String>,
        /// Route every request through the fleet coordinator instead of
        /// speaking raw HTTP at one server.
        fleet: bool,
        /// Worker addresses for `--fleet` (comma-separated `host:port`).
        workers: Vec<String>,
        /// Per-job cycle budget in fleet mode (tightens deadlines).
        cycle_budget: Option<u64>,
        /// Reuse connections across requests (HTTP/1.1 keep-alive).
        keep_alive: bool,
        /// Requests pipelined per round trip (1 = classic).
        pipeline: usize,
    },
    /// `coordinator` — run the Fig 7 sweep across a fleet of workers with
    /// retries, backoff, and failover.
    Coordinator {
        /// Worker addresses (comma-separated `host:port`).
        workers: Vec<String>,
        /// Fleet seed (backoff jitter).
        seed: u64,
        /// Concurrent dispatch threads.
        threads: usize,
        /// Attempts per job before giving up with a labeled error row.
        max_attempts: u32,
        /// Per-job cycle budget (tightens deadlines).
        cycle_budget: Option<u64>,
        /// Durable campaign directory (journal + result store).
        journal: Option<String>,
        /// Resume the journaled campaign instead of starting fresh.
        resume: bool,
    },
    /// `chaos-fleet` — network-fault campaign against a live two-worker
    /// fleet; exits 1 on any lost or silently-wrong row.
    ChaosFleet {
        /// Fleet seeds per scenario (campaign uses seeds `1..=N`).
        seeds: u64,
        /// Restrict the campaign to one workload set (comma-separated;
        /// empty = the default two sets).
        apps: Vec<String>,
        /// Per-job cycle budget (keeps scenarios fast).
        cycle_budget: Option<u64>,
        /// Connections forwarded cleanly before each fault engages.
        trigger_after: usize,
        /// Simulation worker threads per in-process server.
        sim_workers: usize,
    },
    /// `fuzz` — mass kernel fuzzing with the differential cross-technique
    /// oracle, locally or fanned out across a fleet.
    Fuzz {
        /// Campaign seed.
        seed: u64,
        /// Kernel count (the reproducible budget).
        iters: u64,
        /// Optional wall-clock budget in seconds (coarse; trades
        /// byte-for-byte reproducibility for boundedness).
        duration_secs: Option<u64>,
        /// Simulation worker threads (default: all cores).
        jobs: Option<usize>,
        /// Device-loop worker threads per simulation.
        sm_workers: Option<u32>,
        /// Per-technique cycle budget before watchdog escalation.
        cycle_budget: Option<u64>,
        /// Stop scanning after this many divergences.
        max_divergences: u64,
        /// Write the JSON stats artifact to this path.
        stats: Option<String>,
        /// Replay one artifact file instead of running a campaign.
        replay: Option<String>,
        /// Planted manager fault, `class:severity:seed:technique`
        /// (oracle self-test mode).
        fault: Option<String>,
        /// Skip minimization of found divergences.
        no_minimize: bool,
        /// Fan the campaign out across fleet workers.
        fleet: bool,
        /// Worker addresses for `--fleet` (comma-separated `host:port`).
        workers: Vec<String>,
        /// Durable campaign directory (journal + result store).
        journal: Option<String>,
        /// Resume the journaled campaign instead of starting fresh.
        resume: bool,
    },
    /// `help` — usage.
    Help,
}

/// Parse failures, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Validate the `--journal DIR` / `--resume` pair shared by the campaign
/// verbs: `--resume` is meaningless without a journal to resume from.
fn check_journal(journal: &Option<String>, resume: bool) -> Result<(), ParseError> {
    if resume && journal.is_none() {
        return Err(ParseError("--resume needs --journal DIR".into()));
    }
    Ok(())
}

fn technique_from(s: &str) -> Result<Technique, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Technique::Baseline),
        "regmutex" => Ok(Technique::RegMutex),
        "paired" | "regmutex-paired" => Ok(Technique::RegMutexPaired),
        "rfv" => Ok(Technique::Rfv),
        "owf" => Ok(Technique::Owf),
        other => Err(ParseError(format!(
            "unknown technique '{other}' (expected baseline|regmutex|paired|rfv|owf)"
        ))),
    }
}

fn value_of<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> Result<T, ParseError> {
    let v = v.ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| ParseError(format!("invalid value '{v}' for {flag}")))
}

/// Parse a u64 seed flag, accepting decimal or `0x`-prefixed hex (the
/// form fuzz reports and artifacts print seeds in).
fn seed_of(flag: &str, v: Option<&String>) -> Result<u64, ParseError> {
    let v = v.ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| ParseError(format!("invalid value '{v}' for {flag}")))
}

/// Parse the flags shared by `sweep` and `compare`: `--jobs N` (or
/// `--jobs=N`) plus any of `allowed`, returning (jobs, which allowed flags
/// were seen).
fn sweep_flags<'a>(
    rest: &[String],
    allowed: &[&'a str],
) -> Result<(Option<usize>, Vec<&'a str>), ParseError> {
    let mut jobs = None;
    let mut seen = Vec::new();
    let mut it = rest.iter().skip(1);
    while let Some(a) = it.next() {
        if a == "--jobs" {
            jobs = Some(value_of("--jobs", it.next())?);
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = Some(value_of("--jobs", Some(&v.to_string()))?);
        } else if let Some(&f) = allowed.iter().find(|&&f| f == a) {
            seen.push(f);
        } else {
            return Err(ParseError(format!("unknown flag '{a}'")));
        }
    }
    Ok((jobs, seen))
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    let app = || -> Result<String, ParseError> {
        rest.first()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .ok_or_else(|| ParseError(format!("'{cmd}' needs a workload name; try 'list'")))
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => {
            let mut json = false;
            for a in rest {
                match a.as_str() {
                    "--json" => json = true,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::List { json })
        }
        "serve" => {
            let mut addr = "127.0.0.1:8077".to_string();
            let mut workers = None;
            let mut queue = 64usize;
            let mut cache_mb = 64usize;
            let mut cycle_budget = None;
            let mut max_connections = 64usize;
            let mut sm_workers = None;
            let mut client_rate = 0.0f64;
            let mut client_burst = 8.0f64;
            let mut cache_dir = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| ParseError("--addr needs a value".into()))?
                            .clone()
                    }
                    "--workers" => workers = Some(value_of("--workers", it.next())?),
                    "--queue" => queue = value_of("--queue", it.next())?,
                    "--cache-mb" => cache_mb = value_of("--cache-mb", it.next())?,
                    "--cycle-budget" => cycle_budget = Some(value_of("--cycle-budget", it.next())?),
                    "--max-connections" => {
                        max_connections = value_of("--max-connections", it.next())?
                    }
                    "--sm-workers" => sm_workers = Some(value_of("--sm-workers", it.next())?),
                    "--client-rate" => client_rate = value_of("--client-rate", it.next())?,
                    "--client-burst" => client_burst = value_of("--client-burst", it.next())?,
                    "--cache-dir" => {
                        cache_dir = Some(
                            it.next()
                                .ok_or_else(|| ParseError("--cache-dir needs a directory".into()))?
                                .clone(),
                        )
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            if queue == 0 {
                return Err(ParseError("--queue must be at least 1".into()));
            }
            if client_rate < 0.0 || client_burst < 0.0 {
                return Err(ParseError(
                    "--client-rate and --client-burst must be non-negative".into(),
                ));
            }
            Ok(Command::Serve {
                addr,
                workers,
                queue,
                cache_mb,
                cycle_budget,
                max_connections,
                sm_workers,
                client_rate,
                client_burst,
                cache_dir,
            })
        }
        "loadgen" => {
            let mut addr = "127.0.0.1:8077".to_string();
            let mut threads = 4usize;
            let mut requests = 50usize;
            let mut seed = 0x5eed_2024u64;
            let mut apps = Vec::new();
            let mut fleet = false;
            let mut workers = Vec::new();
            let mut cycle_budget = None;
            let mut keep_alive = true;
            let mut pipeline = 1usize;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| ParseError("--addr needs a value".into()))?
                            .clone()
                    }
                    "--threads" => threads = value_of("--threads", it.next())?,
                    "--requests" => requests = value_of("--requests", it.next())?,
                    "--seed" => seed = value_of("--seed", it.next())?,
                    "--apps" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--apps needs a value".into()))?;
                        apps = v.split(',').map(str::to_string).collect();
                    }
                    "--fleet" => fleet = true,
                    "--workers" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--workers needs a value".into()))?;
                        workers = v.split(',').map(str::to_string).collect();
                        fleet = true;
                    }
                    "--cycle-budget" => cycle_budget = Some(value_of("--cycle-budget", it.next())?),
                    "--keep-alive" => keep_alive = true,
                    "--no-keep-alive" => keep_alive = false,
                    "--pipeline" => pipeline = value_of("--pipeline", it.next())?,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            if threads == 0 || requests == 0 {
                return Err(ParseError(
                    "--threads and --requests must be at least 1".into(),
                ));
            }
            if fleet && workers.is_empty() {
                return Err(ParseError(
                    "--fleet needs --workers HOST:PORT[,HOST:PORT...]".into(),
                ));
            }
            if pipeline == 0 {
                return Err(ParseError("--pipeline must be at least 1".into()));
            }
            if fleet && pipeline > 1 {
                return Err(ParseError(
                    "--pipeline applies to direct loadgen, not --fleet".into(),
                ));
            }
            Ok(Command::Loadgen {
                addr,
                threads,
                requests,
                seed,
                apps,
                fleet,
                workers,
                cycle_budget,
                keep_alive,
                pipeline,
            })
        }
        "coordinator" => {
            let mut workers = Vec::new();
            let mut seed = 0x5eed_2024u64;
            let mut threads = 4usize;
            let mut max_attempts = 4u32;
            let mut cycle_budget = None;
            let mut journal = None;
            let mut resume = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--workers" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--workers needs a value".into()))?;
                        workers = v.split(',').map(str::to_string).collect();
                    }
                    "--seed" => seed = value_of("--seed", it.next())?,
                    "--threads" => threads = value_of("--threads", it.next())?,
                    "--max-attempts" => max_attempts = value_of("--max-attempts", it.next())?,
                    "--cycle-budget" => cycle_budget = Some(value_of("--cycle-budget", it.next())?),
                    "--journal" => {
                        journal = Some(
                            it.next()
                                .ok_or_else(|| ParseError("--journal needs a directory".into()))?
                                .clone(),
                        )
                    }
                    "--resume" => resume = true,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            check_journal(&journal, resume)?;
            if workers.is_empty() {
                return Err(ParseError(
                    "coordinator needs --workers HOST:PORT[,HOST:PORT...]".into(),
                ));
            }
            if threads == 0 || max_attempts == 0 {
                return Err(ParseError(
                    "--threads and --max-attempts must be at least 1".into(),
                ));
            }
            Ok(Command::Coordinator {
                workers,
                seed,
                threads,
                max_attempts,
                cycle_budget,
                journal,
                resume,
            })
        }
        "chaos-fleet" => {
            let mut seeds = 4u64;
            let mut apps = Vec::new();
            let mut cycle_budget = Some(150_000u64);
            let mut trigger_after = 0usize;
            let mut sim_workers = 2usize;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seeds" => seeds = value_of("--seeds", it.next())?,
                    "--apps" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--apps needs a value".into()))?;
                        apps = v.split(',').map(str::to_string).collect();
                    }
                    "--cycle-budget" => cycle_budget = Some(value_of("--cycle-budget", it.next())?),
                    "--no-cycle-budget" => cycle_budget = None,
                    "--trigger-after" => trigger_after = value_of("--trigger-after", it.next())?,
                    "--sim-workers" => sim_workers = value_of("--sim-workers", it.next())?,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            if seeds == 0 || sim_workers == 0 {
                return Err(ParseError(
                    "--seeds and --sim-workers must be at least 1".into(),
                ));
            }
            Ok(Command::ChaosFleet {
                seeds,
                apps,
                cycle_budget,
                trigger_after,
                sim_workers,
            })
        }
        "disasm" => Ok(Command::Disasm {
            app: app()?,
            transformed: rest.iter().any(|a| a == "--transformed"),
            liveness: rest.iter().any(|a| a == "--liveness"),
        }),
        "trace" => {
            let mut max_steps = 20_000usize;
            let mut it = rest.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--max" => max_steps = value_of("--max", it.next())?,
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Trace {
                app: app()?,
                max_steps,
            })
        }
        "sweep" => {
            let mut jobs = None;
            let mut journal = None;
            let mut resume = false;
            let mut it = rest.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--jobs" => jobs = Some(value_of("--jobs", it.next())?),
                    "--journal" => {
                        journal = Some(
                            it.next()
                                .ok_or_else(|| ParseError("--journal needs a directory".into()))?
                                .clone(),
                        )
                    }
                    "--resume" => resume = true,
                    other => {
                        if let Some(v) = other.strip_prefix("--jobs=") {
                            jobs = Some(value_of("--jobs", Some(&v.to_string()))?);
                        } else {
                            return Err(ParseError(format!("unknown flag '{other}'")));
                        }
                    }
                }
            }
            check_journal(&journal, resume)?;
            Ok(Command::Sweep {
                app: app()?,
                jobs,
                journal,
                resume,
            })
        }
        "compare" => {
            let (jobs, seen) = sweep_flags(rest, &["--half-rf"])?;
            Ok(Command::Compare {
                app: app()?,
                half_rf: seen.contains(&"--half-rf"),
                jobs,
            })
        }
        "run" => {
            let app = app()?;
            let mut technique = Technique::RegMutex;
            let mut half_rf = false;
            let mut ctas = None;
            let mut force_es = None;
            let mut watchdog_cycles = None;
            let mut stall_multiplier = None;
            let mut no_cycle_skip = false;
            let mut sm_workers = None;
            let mut it = rest.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--technique" | "-t" => {
                        technique = technique_from(
                            it.next()
                                .ok_or_else(|| ParseError("--technique needs a value".into()))?,
                        )?
                    }
                    "--half-rf" => half_rf = true,
                    "--ctas" => ctas = Some(value_of("--ctas", it.next())?),
                    "--force-es" => force_es = Some(value_of("--force-es", it.next())?),
                    "--watchdog-cycles" => {
                        watchdog_cycles = Some(value_of("--watchdog-cycles", it.next())?)
                    }
                    "--stall-multiplier" => {
                        stall_multiplier = Some(value_of("--stall-multiplier", it.next())?)
                    }
                    "--no-cycle-skip" => no_cycle_skip = true,
                    "--sm-workers" => sm_workers = Some(value_of("--sm-workers", it.next())?),
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Run {
                app,
                technique,
                half_rf,
                ctas,
                force_es,
                watchdog_cycles,
                stall_multiplier,
                no_cycle_skip,
                sm_workers,
            })
        }
        "bench-loop" => {
            let mut apps = Vec::new();
            let mut iters = 3usize;
            let mut out = "BENCH_simloop.json".to_string();
            let mut sm_workers = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--apps" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--apps needs a value".into()))?;
                        apps = v.split(',').map(str::to_string).collect();
                    }
                    "--iters" => iters = value_of("--iters", it.next())?,
                    "--out" => {
                        out = it
                            .next()
                            .ok_or_else(|| ParseError("--out needs a value".into()))?
                            .clone()
                    }
                    "--sm-workers" => sm_workers = Some(value_of("--sm-workers", it.next())?),
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            if iters == 0 {
                return Err(ParseError("--iters must be at least 1".into()));
            }
            Ok(Command::BenchLoop {
                apps,
                iters,
                out,
                sm_workers,
            })
        }
        "chaos" => {
            let mut apps = Vec::new();
            let mut seeds = 8u64;
            let mut technique = Technique::RegMutex;
            let mut jobs = None;
            let mut watchdog_cycles = None;
            let mut stall_multiplier = None;
            let mut expect_detections = false;
            let mut journal = None;
            let mut resume = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seeds" => seeds = value_of("--seeds", it.next())?,
                    "--journal" => {
                        journal = Some(
                            it.next()
                                .ok_or_else(|| ParseError("--journal needs a directory".into()))?
                                .clone(),
                        )
                    }
                    "--resume" => resume = true,
                    "--technique" | "-t" => {
                        technique = technique_from(
                            it.next()
                                .ok_or_else(|| ParseError("--technique needs a value".into()))?,
                        )?
                    }
                    "--jobs" => jobs = Some(value_of("--jobs", it.next())?),
                    "--watchdog-cycles" => {
                        watchdog_cycles = Some(value_of("--watchdog-cycles", it.next())?)
                    }
                    "--stall-multiplier" => {
                        stall_multiplier = Some(value_of("--stall-multiplier", it.next())?)
                    }
                    "--expect-detections" => expect_detections = true,
                    other if other.starts_with("--") => {
                        if let Some(v) = other.strip_prefix("--jobs=") {
                            jobs = Some(value_of("--jobs", Some(&v.to_string()))?);
                        } else {
                            return Err(ParseError(format!("unknown flag '{other}'")));
                        }
                    }
                    name => apps.push(name.to_string()),
                }
            }
            if seeds == 0 {
                return Err(ParseError("--seeds must be at least 1".into()));
            }
            check_journal(&journal, resume)?;
            Ok(Command::Chaos {
                apps,
                seeds,
                technique,
                jobs,
                watchdog_cycles,
                stall_multiplier,
                expect_detections,
                journal,
                resume,
            })
        }
        "fuzz" => {
            let mut seed = 0x5eed_f022u64;
            let mut iters = 1000u64;
            let mut duration_secs = None;
            let mut jobs = None;
            let mut sm_workers = None;
            let mut cycle_budget = None;
            let mut max_divergences = 5u64;
            let mut stats = None;
            let mut replay = None;
            let mut fault = None;
            let mut no_minimize = false;
            let mut fleet = false;
            let mut workers = Vec::new();
            let mut journal = None;
            let mut resume = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seed" => seed = seed_of("--seed", it.next())?,
                    "--iters" => iters = value_of("--iters", it.next())?,
                    "--duration-secs" => {
                        duration_secs = Some(value_of("--duration-secs", it.next())?)
                    }
                    "--jobs" => jobs = Some(value_of("--jobs", it.next())?),
                    "--sm-workers" => sm_workers = Some(value_of("--sm-workers", it.next())?),
                    "--cycle-budget" => cycle_budget = Some(value_of("--cycle-budget", it.next())?),
                    "--max-divergences" => {
                        max_divergences = value_of("--max-divergences", it.next())?
                    }
                    "--stats" => {
                        stats = Some(
                            it.next()
                                .ok_or_else(|| ParseError("--stats needs a path".into()))?
                                .clone(),
                        )
                    }
                    "--replay" => {
                        replay = Some(
                            it.next()
                                .ok_or_else(|| ParseError("--replay needs a file".into()))?
                                .clone(),
                        )
                    }
                    "--fault" => {
                        fault = Some(
                            it.next()
                                .ok_or_else(|| {
                                    ParseError("--fault needs class:severity:seed:technique".into())
                                })?
                                .clone(),
                        )
                    }
                    "--no-minimize" => no_minimize = true,
                    "--journal" => {
                        journal = Some(
                            it.next()
                                .ok_or_else(|| ParseError("--journal needs a directory".into()))?
                                .clone(),
                        )
                    }
                    "--resume" => resume = true,
                    "--fleet" => fleet = true,
                    "--workers" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--workers needs a value".into()))?;
                        workers = v.split(',').map(str::to_string).collect();
                        fleet = true;
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}'"))),
                }
            }
            if iters == 0 {
                return Err(ParseError("--iters must be at least 1".into()));
            }
            if max_divergences == 0 {
                return Err(ParseError("--max-divergences must be at least 1".into()));
            }
            if fleet && workers.is_empty() {
                return Err(ParseError(
                    "--fleet needs --workers HOST:PORT[,HOST:PORT...]".into(),
                ));
            }
            if fleet && (replay.is_some() || fault.is_some()) {
                return Err(ParseError(
                    "--fleet cannot be combined with --replay or --fault".into(),
                ));
            }
            check_journal(&journal, resume)?;
            if journal.is_some() && fleet {
                return Err(ParseError(
                    "--journal applies to local campaigns, not --fleet".into(),
                ));
            }
            if journal.is_some() && replay.is_some() {
                return Err(ParseError(
                    "--journal applies to campaigns, not --replay".into(),
                ));
            }
            Ok(Command::Fuzz {
                seed,
                iters,
                duration_secs,
                jobs,
                sm_workers,
                cycle_budget,
                max_divergences,
                stats,
                replay,
                fault,
                no_minimize,
                fleet,
                workers,
                journal,
                resume,
            })
        }
        other => Err(ParseError(format!("unknown command '{other}'; try 'help'"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
regmutex-cli — drive the RegMutex (ISCA 2018) reproduction

USAGE:
  regmutex-cli list [--json]
  regmutex-cli disasm <app> [--transformed] [--liveness]
  regmutex-cli run <app> [--technique baseline|regmutex|paired|rfv|owf]
                         [--half-rf] [--ctas N] [--force-es N]
                         [--watchdog-cycles N] [--stall-multiplier N]
                         [--no-cycle-skip] [--sm-workers N]
  regmutex-cli bench-loop [--apps A,B,...] [--iters N] [--out PATH]
                          [--sm-workers N]
  regmutex-cli compare <app> [--half-rf] [--jobs N]
  regmutex-cli trace <app> [--max N]
  regmutex-cli sweep <app> [--jobs N] [--journal DIR [--resume]]
  regmutex-cli chaos [<app>...] [--seeds N] [--technique T] [--jobs N]
                     [--watchdog-cycles N] [--stall-multiplier N]
                     [--expect-detections] [--journal DIR [--resume]]
  regmutex-cli serve [--addr HOST:PORT] [--workers N] [--queue N]
                     [--cache-mb N] [--cycle-budget N]
                     [--max-connections N] [--sm-workers N]
                     [--client-rate R] [--client-burst N]
                     [--cache-dir DIR]
  regmutex-cli loadgen [--addr HOST:PORT] [--threads N] [--requests N]
                       [--seed N] [--apps A,B,...] [--no-keep-alive]
                       [--pipeline N]
                       [--fleet --workers H:P,H:P,...] [--cycle-budget N]
  regmutex-cli coordinator --workers H:P[,H:P...] [--seed N] [--threads N]
                           [--max-attempts N] [--cycle-budget N]
                           [--journal DIR [--resume]]
  regmutex-cli chaos-fleet [--seeds N] [--apps A,B,...] [--cycle-budget N]
                           [--no-cycle-budget] [--trigger-after N]
                           [--sim-workers N]
  regmutex-cli fuzz [--seed N] [--iters N] [--duration-secs N] [--jobs N]
                    [--sm-workers N] [--cycle-budget N]
                    [--max-divergences N] [--stats PATH] [--no-minimize]
                    [--replay FILE] [--fault CLASS:SEV:SEED:TECHNIQUE]
                    [--fleet --workers H:P,H:P,...]
                    [--journal DIR [--resume]]
  regmutex-cli help

The multi-simulation commands (compare, sweep, chaos) run their
simulations on a worker pool; --jobs N sets the worker count (default:
all cores). Output is identical for any worker count.

The simulator fast-forwards over provably idle stretches (event-driven
cycle skipping); results are bit-identical either way. --no-cycle-skip
forces the tick-by-tick loop. One simulation can also shard its SMs
across threads: --sm-workers N (or REGMUTEX_SM_WORKERS; default 1 =
serial) steps the simulated SMs on N lockstep workers with bit-identical
results at any count. bench-loop times both loops over a workload basket
(median of --iters runs) plus a whole-device serial-vs-sharded pass,
cross-checks that all stats agree, and writes the measurements as JSON
(exit 1 on any mismatch or if skipping is >10% slower overall).

chaos injects seeded register-manager faults (dropped/delayed releases,
spurious acquires, corrupted LUT entries, stuck SRP bits, memory-latency
spikes) into every listed workload (default: a six-workload mix) and
verifies the safety net: exit 1 if any injection silently corrupts a
result, or if --expect-detections is set and some fault class was never
caught. --watchdog-cycles and --stall-multiplier tune the detectors.

serve runs the std-only HTTP simulation service (GET /healthz, GET
/metrics, GET /v1/workloads, POST /v1/run, POST /v1/sweep, POST
/v1/shutdown) on a raw-epoll event loop: HTTP/1.1 keep-alive with
bounded pipelining, chunked streaming for sweeps and fuzz progress,
bounded job queue (429 + Retry-After when full), shared LRU result
cache, per-client token-bucket fairness (--client-rate req/s with
--client-burst headroom; 0 = off), Prometheus metrics, and graceful
SIGINT/SIGTERM drain. loadgen drives it closed-loop over persistent
connections (--no-keep-alive for one connection per request,
--pipeline N for N requests per round trip) with a seeded workload mix
and reports throughput, exact latency percentiles, connection reuse,
backpressure and cache hits (429s are retried per Retry-After, capped,
and reported as goodput; pipelined batches skip retries).

coordinator schedules the Fig 7 sweep across N workers: consistent-hash
routing by job fingerprint (cache affinity), per-job deadlines from the
cycle budget, bounded retries with seeded-jittered exponential backoff,
automatic re-dispatch away from dead or hung workers (strike-based
quarantine + periodic /healthz re-admission), and response integrity
checks. Output is byte-identical to the local sweep at any worker count;
aggregated Prometheus metrics go to stderr. loadgen --fleet drives the
same coordinator closed-loop and breaks traffic down per worker.

chaos-fleet injects every network fault class (kill, hang, close-early,
truncate, corrupt, delay) into a live two-worker fleet via a
deterministic proxy and compares every row against a local golden run:
exit 1 if any job was lost or any row silently wrong.

The campaign verbs (sweep, chaos, fuzz, coordinator) can run durably:
--journal DIR appends every completion to a checksummed journal in DIR
and spills results into a content-addressed store there, SIGINT/SIGTERM
checkpoints cleanly (exit 4, progress saved), and --resume replays the
journal, skips finished work, and produces byte-identical final output
to an uninterrupted run — at any --jobs / --sm-workers / worker count.
A journal from a different campaign is refused; corrupted journal
records are diagnosed on stderr and the affected work re-runs. serve
--cache-dir DIR persists the result cache the same way, so a restarted
server comes up warm. If the journal disk fails mid-run (ENOSPC, EIO),
the campaign finishes in memory-only mode with a one-time warning.

fuzz generates --iters random kernels from --seed (kernel i is derived
from mix(seed, i)) and runs each through every technique, checking
checksum agreement, the RegMutex occupancy floor, and verdict symmetry;
divergences are delta-debugged over the generator's decision trace into
small replayable seed+trace artifacts (exit 1 if any are found). The
report is byte-identical at any --jobs / --sm-workers count. --replay
re-runs one artifact and exits 0 iff its documented outcome reproduces;
--fault plants a register-manager fault (the oracle self-test: the
campaign MUST diverge); --stats writes machine-readable counters
including wall-clock throughput; --fleet shards the index range across
workers' POST /v1/fuzz endpoints with failover and merges shard results
in index order.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&v(&["help"])), Ok(Command::Help));
        assert_eq!(parse(&v(&["--help"])), Ok(Command::Help));
    }

    #[test]
    fn list_parses() {
        assert_eq!(parse(&v(&["list"])), Ok(Command::List { json: false }));
        assert_eq!(
            parse(&v(&["list", "--json"])),
            Ok(Command::List { json: true })
        );
        assert!(parse(&v(&["list", "--yaml"])).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            parse(&v(&["serve"])),
            Ok(Command::Serve {
                addr: "127.0.0.1:8077".into(),
                workers: None,
                queue: 64,
                cache_mb: 64,
                cycle_budget: None,
                max_connections: 64,
                sm_workers: None,
                client_rate: 0.0,
                client_burst: 8.0,
                cache_dir: None,
            })
        );
        assert_eq!(
            parse(&v(&[
                "serve",
                "--addr",
                "0.0.0.0:9000",
                "--workers",
                "2",
                "--queue",
                "8",
                "--cache-mb",
                "16",
                "--cycle-budget",
                "1000000",
                "--max-connections",
                "32",
                "--client-rate",
                "50.5",
                "--client-burst",
                "4"
            ])),
            Ok(Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: Some(2),
                queue: 8,
                cache_mb: 16,
                cycle_budget: Some(1_000_000),
                max_connections: 32,
                sm_workers: None,
                client_rate: 50.5,
                client_burst: 4.0,
                cache_dir: None,
            })
        );
        assert!(parse(&v(&["serve", "--queue", "0"])).is_err());
        assert!(parse(&v(&["serve", "--client-rate", "-1"])).is_err());
        assert!(parse(&v(&["serve", "--what"])).is_err());
    }

    #[test]
    fn loadgen_defaults_and_flags() {
        assert_eq!(
            parse(&v(&["loadgen"])),
            Ok(Command::Loadgen {
                addr: "127.0.0.1:8077".into(),
                threads: 4,
                requests: 50,
                seed: 0x5eed_2024,
                apps: vec![],
                fleet: false,
                workers: vec![],
                cycle_budget: None,
                keep_alive: true,
                pipeline: 1,
            })
        );
        assert_eq!(
            parse(&v(&[
                "loadgen",
                "--addr",
                "127.0.0.1:1234",
                "--threads",
                "2",
                "--requests",
                "10",
                "--seed",
                "7",
                "--apps",
                "BFS,SPMV",
                "--no-keep-alive",
                "--pipeline",
                "8"
            ])),
            Ok(Command::Loadgen {
                addr: "127.0.0.1:1234".into(),
                threads: 2,
                requests: 10,
                seed: 7,
                apps: vec!["BFS".into(), "SPMV".into()],
                fleet: false,
                workers: vec![],
                cycle_budget: None,
                keep_alive: false,
                pipeline: 8,
            })
        );
        // --keep-alive restores the default (last flag wins).
        match parse(&v(&["loadgen", "--no-keep-alive", "--keep-alive"])) {
            Ok(Command::Loadgen { keep_alive, .. }) => assert!(keep_alive),
            other => panic!("expected loadgen to parse, got {other:?}"),
        }
        assert!(parse(&v(&["loadgen", "--threads", "0"])).is_err());
        assert!(parse(&v(&["loadgen", "--pipeline", "0"])).is_err());
        assert!(parse(&v(&[
            "loadgen",
            "--workers",
            "127.0.0.1:1",
            "--pipeline",
            "4"
        ]))
        .is_err());
    }

    #[test]
    fn loadgen_fleet_mode() {
        // --workers implies --fleet; --cycle-budget rides along.
        assert_eq!(
            parse(&v(&[
                "loadgen",
                "--workers",
                "127.0.0.1:1,127.0.0.1:2",
                "--cycle-budget",
                "100000"
            ])),
            Ok(Command::Loadgen {
                addr: "127.0.0.1:8077".into(),
                threads: 4,
                requests: 50,
                seed: 0x5eed_2024,
                apps: vec![],
                fleet: true,
                workers: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
                cycle_budget: Some(100_000),
                keep_alive: true,
                pipeline: 1,
            })
        );
        // --fleet without workers is an error.
        assert!(parse(&v(&["loadgen", "--fleet"])).is_err());
    }

    #[test]
    fn coordinator_requires_workers() {
        assert!(parse(&v(&["coordinator"])).is_err());
        assert_eq!(
            parse(&v(&[
                "coordinator",
                "--workers",
                "127.0.0.1:1,127.0.0.1:2,127.0.0.1:3",
                "--seed",
                "9",
                "--threads",
                "8",
                "--max-attempts",
                "5",
                "--cycle-budget",
                "50000"
            ])),
            Ok(Command::Coordinator {
                workers: vec![
                    "127.0.0.1:1".into(),
                    "127.0.0.1:2".into(),
                    "127.0.0.1:3".into()
                ],
                seed: 9,
                threads: 8,
                max_attempts: 5,
                cycle_budget: Some(50_000),
                journal: None,
                resume: false,
            })
        );
        assert!(parse(&v(&["coordinator", "--workers", "a", "--threads", "0"])).is_err());
    }

    #[test]
    fn chaos_fleet_defaults_and_flags() {
        assert_eq!(
            parse(&v(&["chaos-fleet"])),
            Ok(Command::ChaosFleet {
                seeds: 4,
                apps: vec![],
                cycle_budget: Some(150_000),
                trigger_after: 0,
                sim_workers: 2,
            })
        );
        assert_eq!(
            parse(&v(&[
                "chaos-fleet",
                "--seeds",
                "2",
                "--apps",
                "BFS,SPMV",
                "--no-cycle-budget",
                "--trigger-after",
                "3",
                "--sim-workers",
                "1"
            ])),
            Ok(Command::ChaosFleet {
                seeds: 2,
                apps: vec!["BFS".into(), "SPMV".into()],
                cycle_budget: None,
                trigger_after: 3,
                sim_workers: 1,
            })
        );
        assert!(parse(&v(&["chaos-fleet", "--seeds", "0"])).is_err());
        assert!(parse(&v(&["chaos-fleet", "--nope"])).is_err());
    }

    #[test]
    fn disasm_flags() {
        assert_eq!(
            parse(&v(&["disasm", "BFS", "--transformed", "--liveness"])),
            Ok(Command::Disasm {
                app: "BFS".into(),
                transformed: true,
                liveness: true
            })
        );
        assert_eq!(
            parse(&v(&["disasm", "BFS"])),
            Ok(Command::Disasm {
                app: "BFS".into(),
                transformed: false,
                liveness: false
            })
        );
    }

    #[test]
    fn run_full_form() {
        assert_eq!(
            parse(&v(&[
                "run",
                "SAD",
                "-t",
                "rfv",
                "--half-rf",
                "--ctas",
                "90",
                "--force-es",
                "8"
            ])),
            Ok(Command::Run {
                app: "SAD".into(),
                technique: Technique::Rfv,
                half_rf: true,
                ctas: Some(90),
                force_es: Some(8),
                watchdog_cycles: None,
                stall_multiplier: None,
                no_cycle_skip: false,
                sm_workers: None,
            })
        );
    }

    #[test]
    fn run_detector_flags() {
        assert_eq!(
            parse(&v(&[
                "run",
                "BFS",
                "--watchdog-cycles",
                "5000000",
                "--stall-multiplier",
                "16"
            ])),
            Ok(Command::Run {
                app: "BFS".into(),
                technique: Technique::RegMutex,
                half_rf: false,
                ctas: None,
                force_es: None,
                watchdog_cycles: Some(5_000_000),
                stall_multiplier: Some(16),
                no_cycle_skip: false,
                sm_workers: None,
            })
        );
        assert!(parse(&v(&["run", "BFS", "--watchdog-cycles", "soon"])).is_err());
    }

    #[test]
    fn run_defaults_to_regmutex() {
        assert_eq!(
            parse(&v(&["run", "BFS"])),
            Ok(Command::Run {
                app: "BFS".into(),
                technique: Technique::RegMutex,
                half_rf: false,
                ctas: None,
                force_es: None,
                watchdog_cycles: None,
                stall_multiplier: None,
                no_cycle_skip: false,
                sm_workers: None,
            })
        );
    }

    #[test]
    fn run_no_cycle_skip_flag() {
        assert_eq!(
            parse(&v(&["run", "BFS", "--no-cycle-skip"])),
            Ok(Command::Run {
                app: "BFS".into(),
                technique: Technique::RegMutex,
                half_rf: false,
                ctas: None,
                force_es: None,
                watchdog_cycles: None,
                stall_multiplier: None,
                no_cycle_skip: true,
                sm_workers: None,
            })
        );
    }

    #[test]
    fn sm_workers_flag_on_all_three_subcommands() {
        match parse(&v(&["run", "BFS", "--sm-workers", "4"])) {
            Ok(Command::Run { sm_workers, .. }) => assert_eq!(sm_workers, Some(4)),
            other => panic!("expected run to parse, got {other:?}"),
        }
        match parse(&v(&["bench-loop", "--sm-workers", "2"])) {
            Ok(Command::BenchLoop { sm_workers, .. }) => assert_eq!(sm_workers, Some(2)),
            other => panic!("expected bench-loop to parse, got {other:?}"),
        }
        match parse(&v(&["serve", "--sm-workers", "8"])) {
            Ok(Command::Serve { sm_workers, .. }) => assert_eq!(sm_workers, Some(8)),
            other => panic!("expected serve to parse, got {other:?}"),
        }
        assert!(parse(&v(&["run", "BFS", "--sm-workers", "many"])).is_err());
    }

    #[test]
    fn bench_loop_defaults_and_flags() {
        assert_eq!(
            parse(&v(&["bench-loop"])),
            Ok(Command::BenchLoop {
                apps: vec![],
                iters: 3,
                out: "BENCH_simloop.json".into(),
                sm_workers: None,
            })
        );
        assert_eq!(
            parse(&v(&[
                "bench-loop",
                "--apps",
                "Gaussian,BFS",
                "--iters",
                "7",
                "--out",
                "/tmp/b.json"
            ])),
            Ok(Command::BenchLoop {
                apps: vec!["Gaussian".into(), "BFS".into()],
                iters: 7,
                out: "/tmp/b.json".into(),
                sm_workers: None,
            })
        );
        assert!(parse(&v(&["bench-loop", "--iters", "0"])).is_err());
    }

    #[test]
    fn chaos_defaults_and_flags() {
        assert_eq!(
            parse(&v(&["chaos"])),
            Ok(Command::Chaos {
                apps: vec![],
                seeds: 8,
                technique: Technique::RegMutex,
                jobs: None,
                watchdog_cycles: None,
                stall_multiplier: None,
                expect_detections: false,
                journal: None,
                resume: false,
            })
        );
        assert_eq!(
            parse(&v(&[
                "chaos",
                "BFS",
                "MergeSort",
                "--seeds",
                "2",
                "--jobs",
                "4",
                "--expect-detections",
                "-t",
                "paired",
                "--stall-multiplier",
                "32"
            ])),
            Ok(Command::Chaos {
                apps: vec!["BFS".into(), "MergeSort".into()],
                seeds: 2,
                technique: Technique::RegMutexPaired,
                jobs: Some(4),
                watchdog_cycles: None,
                stall_multiplier: Some(32),
                expect_detections: true,
                journal: None,
                resume: false,
            })
        );
        assert!(parse(&v(&["chaos", "--seeds", "0"])).is_err());
        assert!(parse(&v(&["chaos", "--nope"])).is_err());
    }

    #[test]
    fn technique_aliases() {
        assert_eq!(technique_from("paired"), Ok(Technique::RegMutexPaired));
        assert_eq!(technique_from("OWF"), Ok(Technique::Owf));
        assert!(technique_from("nope").is_err());
    }

    #[test]
    fn missing_app_is_an_error() {
        assert!(parse(&v(&["run"])).is_err());
        assert!(parse(&v(&["disasm", "--liveness"])).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse(&v(&["run", "BFS", "--what"])).is_err());
        assert!(parse(&v(&["nonsense"])).is_err());
    }

    #[test]
    fn sweep_and_compare_jobs() {
        assert_eq!(
            parse(&v(&["sweep", "BFS"])),
            Ok(Command::Sweep {
                app: "BFS".into(),
                jobs: None,
                journal: None,
                resume: false,
            })
        );
        assert_eq!(
            parse(&v(&["sweep", "BFS", "--jobs", "4"])),
            Ok(Command::Sweep {
                app: "BFS".into(),
                jobs: Some(4),
                journal: None,
                resume: false,
            })
        );
        assert_eq!(
            parse(&v(&["compare", "SAD", "--jobs=2", "--half-rf"])),
            Ok(Command::Compare {
                app: "SAD".into(),
                half_rf: true,
                jobs: Some(2)
            })
        );
        assert!(parse(&v(&["sweep", "BFS", "--jobs", "many"])).is_err());
        assert!(parse(&v(&["sweep", "BFS", "--half-rf"])).is_err());
    }

    #[test]
    fn fuzz_defaults_and_flags() {
        assert_eq!(
            parse(&v(&["fuzz"])),
            Ok(Command::Fuzz {
                seed: 0x5eed_f022,
                iters: 1000,
                duration_secs: None,
                jobs: None,
                sm_workers: None,
                cycle_budget: None,
                max_divergences: 5,
                stats: None,
                replay: None,
                fault: None,
                no_minimize: false,
                fleet: false,
                workers: vec![],
                journal: None,
                resume: false,
            })
        );
        assert_eq!(
            parse(&v(&[
                "fuzz",
                "--seed",
                "42",
                "--iters",
                "500",
                "--jobs",
                "2",
                "--sm-workers",
                "4",
                "--cycle-budget",
                "100000",
                "--max-divergences",
                "3",
                "--stats",
                "/tmp/fuzz.json",
                "--no-minimize",
                "--fault",
                "corrupt-lut:severe:3:regmutex"
            ])),
            Ok(Command::Fuzz {
                seed: 42,
                iters: 500,
                duration_secs: None,
                jobs: Some(2),
                sm_workers: Some(4),
                cycle_budget: Some(100_000),
                max_divergences: 3,
                stats: Some("/tmp/fuzz.json".into()),
                replay: None,
                fault: Some("corrupt-lut:severe:3:regmutex".into()),
                no_minimize: true,
                fleet: false,
                workers: vec![],
                journal: None,
                resume: false,
            })
        );
        // Seeds parse in the same hex form the reports print them in.
        match parse(&v(&["fuzz", "--seed", "0xfa017"])) {
            Ok(Command::Fuzz { seed, .. }) => assert_eq!(seed, 0xfa017),
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["fuzz", "--iters", "0"])).is_err());
        assert!(parse(&v(&["fuzz", "--max-divergences", "0"])).is_err());
        assert!(parse(&v(&["fuzz", "--nope"])).is_err());
    }

    #[test]
    fn fuzz_fleet_mode() {
        // --workers implies --fleet.
        match parse(&v(&["fuzz", "--workers", "127.0.0.1:1,127.0.0.1:2"])) {
            Ok(Command::Fuzz { fleet, workers, .. }) => {
                assert!(fleet);
                assert_eq!(workers.len(), 2);
            }
            other => panic!("expected fuzz to parse, got {other:?}"),
        }
        assert!(parse(&v(&["fuzz", "--fleet"])).is_err());
        // Fleet excludes single-kernel / fault-injection modes.
        assert!(parse(&v(&[
            "fuzz",
            "--fleet",
            "--workers",
            "a:1",
            "--replay",
            "f"
        ]))
        .is_err());
        assert!(parse(&v(&[
            "fuzz",
            "--fleet",
            "--workers",
            "a:1",
            "--fault",
            "corrupt-lut:severe:1:regmutex"
        ]))
        .is_err());
    }

    #[test]
    fn journal_and_resume_flags() {
        // Every campaign verb takes --journal DIR, optionally --resume.
        match parse(&v(&["sweep", "BFS", "--journal", "/tmp/j", "--resume"])) {
            Ok(Command::Sweep {
                journal, resume, ..
            }) => {
                assert_eq!(journal.as_deref(), Some("/tmp/j"));
                assert!(resume);
            }
            other => panic!("expected sweep to parse, got {other:?}"),
        }
        match parse(&v(&["chaos", "BFS", "--journal", "/tmp/j"])) {
            Ok(Command::Chaos {
                journal, resume, ..
            }) => {
                assert_eq!(journal.as_deref(), Some("/tmp/j"));
                assert!(!resume);
            }
            other => panic!("expected chaos to parse, got {other:?}"),
        }
        match parse(&v(&["fuzz", "--journal", "/tmp/j", "--resume"])) {
            Ok(Command::Fuzz {
                journal, resume, ..
            }) => {
                assert_eq!(journal.as_deref(), Some("/tmp/j"));
                assert!(resume);
            }
            other => panic!("expected fuzz to parse, got {other:?}"),
        }
        match parse(&v(&[
            "coordinator",
            "--workers",
            "a:1",
            "--journal",
            "/tmp/j",
        ])) {
            Ok(Command::Coordinator {
                journal, resume, ..
            }) => {
                assert_eq!(journal.as_deref(), Some("/tmp/j"));
                assert!(!resume);
            }
            other => panic!("expected coordinator to parse, got {other:?}"),
        }
        // --resume without --journal is a usage error, on every verb.
        for bad in [
            vec!["sweep", "BFS", "--resume"],
            vec!["chaos", "--resume"],
            vec!["fuzz", "--resume"],
            vec!["coordinator", "--workers", "a:1", "--resume"],
        ] {
            assert!(parse(&v(&bad)).is_err(), "{bad:?} should be rejected");
        }
        // The journal drives a local campaign loop; fleet fan-out and
        // single-artifact replay don't have one.
        assert!(parse(&v(&["fuzz", "--journal", "/tmp/j", "--workers", "a:1"])).is_err());
        assert!(parse(&v(&["fuzz", "--journal", "/tmp/j", "--replay", "f"])).is_err());
        // A value-less --journal is rejected.
        assert!(parse(&v(&["sweep", "BFS", "--journal"])).is_err());
    }

    #[test]
    fn serve_cache_dir_flag() {
        match parse(&v(&["serve", "--cache-dir", "/tmp/cache"])) {
            Ok(Command::Serve { cache_dir, .. }) => {
                assert_eq!(cache_dir.as_deref(), Some("/tmp/cache"));
            }
            other => panic!("expected serve to parse, got {other:?}"),
        }
        assert!(parse(&v(&["serve", "--cache-dir"])).is_err());
    }

    #[test]
    fn trace_max() {
        assert_eq!(
            parse(&v(&["trace", "SAD", "--max", "500"])),
            Ok(Command::Trace {
                app: "SAD".into(),
                max_steps: 500
            })
        );
        assert!(parse(&v(&["trace", "SAD", "--max", "abc"])).is_err());
    }
}
