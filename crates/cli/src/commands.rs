//! Command implementations. Each returns its output as a `String` so tests
//! can assert on it; `main.rs` prints.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use regmutex::{cycle_reduction_percent, Session, Technique, ALL_TECHNIQUES};
use regmutex_bench::chaos::{run_campaign, run_campaign_durable, CampaignSpec, ChaosRun};
use regmutex_bench::{
    runner::default_jobs, ChaosJournal, Fig07Source, JobExecutor, JobSource, JobSpec, Runner,
};
use regmutex_compiler::{analyze, live_trace, CompileOptions};
use regmutex_durable::Journal;
use regmutex_fleet::{
    is_checkpoint, run_fleet_campaign, run_fleet_loadgen, Coordinator, FleetCampaignSpec,
    FleetConfig, FleetJournal, FleetLoadgenConfig,
};
use regmutex_server::{signal, DiskTier, LoadgenConfig, ServerConfig};
use regmutex_sim::{GpuConfig, LaunchConfig};
use regmutex_workloads::{suite, Workload};

/// Exit code for a graceful SIGINT/SIGTERM checkpoint: the campaign is
/// incomplete but its progress is journaled and `--resume` will finish it.
/// Distinct from 0 (clean), 1 (failure), 2 (usage), 3 (partial rows).
pub const CHECKPOINT_EXIT: i32 = 4;

/// The standard checkpoint epilogue: flush already happened, tell the
/// user how to pick the campaign back up.
fn checkpoint_hint(verb: &str, dir: &Path, completed: u64, total: u64) -> String {
    format!(
        "{verb}: checkpointed at {completed} of {total}; \
         resume with --journal {} --resume\n",
        dir.display()
    )
}

/// Errors surfaced to the user.
#[derive(Debug)]
pub struct CommandError(pub String);

impl core::fmt::Display for CommandError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CommandError {}

fn lookup(app: &str) -> Result<Workload, CommandError> {
    suite::by_name(app).ok_or_else(|| {
        let names: Vec<&str> = suite::all().iter().map(|w| w.name).collect();
        CommandError(format!(
            "unknown workload '{app}'; available: {}",
            names.join(", ")
        ))
    })
}

fn config(half_rf: bool) -> GpuConfig {
    if half_rf {
        GpuConfig::gtx480_half_rf()
    } else {
        GpuConfig::gtx480()
    }
}

/// `list [--json]`
pub fn list(json: bool) -> String {
    if json {
        let mut out = regmutex_server::wire::workloads_json().encode();
        out.push('\n');
        return out;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>5} {:>5} {:>5} {:>7} {:>6}  group",
        "app", "regs", "|Bs|", "tpc", "shmem", "grid"
    );
    for w in suite::all() {
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>5} {:>5} {:>7} {:>6}  {:?}",
            w.name,
            w.table_regs,
            w.table_bs,
            w.kernel.threads_per_cta,
            w.kernel.shmem_per_cta,
            w.grid_ctas,
            w.group
        );
    }
    out
}

/// `disasm <app>`
pub fn disasm(app: &str, transformed: bool, liveness: bool) -> Result<String, CommandError> {
    let w = lookup(app)?;
    let session = Session::new(w.table_config());
    let kernel = if transformed {
        let compiled = session
            .compile(&w.kernel)
            .map_err(|e| CommandError(e.to_string()))?;
        compiled.kernel
    } else {
        w.kernel.clone()
    };
    if !liveness {
        return Ok(kernel.to_string());
    }
    let lv = analyze(&kernel);
    let mut out = String::new();
    let _ = writeln!(
        out,
        ".kernel {} // regs={} (live column = live-in count)",
        kernel.name, kernel.regs_per_thread
    );
    for (pc, i) in kernel.instrs.iter().enumerate() {
        let _ = writeln!(out, "  {pc:4}: [{:>2} live] {i}", lv.count_in(pc));
    }
    Ok(out)
}

/// `run <app> ...`
#[allow(clippy::too_many_arguments)]
pub fn run(
    app: &str,
    technique: Technique,
    half_rf: bool,
    ctas: Option<u32>,
    force_es: Option<u16>,
    watchdog_cycles: Option<u64>,
    stall_multiplier: Option<u32>,
    no_cycle_skip: bool,
    sm_workers: Option<u32>,
) -> Result<String, CommandError> {
    let w = lookup(app)?;
    let mut cfg = config(half_rf);
    if let Some(wd) = watchdog_cycles {
        cfg.watchdog_cycles = wd;
    }
    if let Some(m) = stall_multiplier {
        cfg.stall_multiplier = m;
    }
    cfg.cycle_skipping = !no_cycle_skip;
    if let Some(wk) = sm_workers {
        cfg.sm_workers = wk;
    }
    let session = Session::with_options(
        cfg,
        CompileOptions {
            force_es,
            force_apply: force_es.is_some(),
        },
    );
    let launch = LaunchConfig::new(ctas.unwrap_or(w.grid_ctas));
    let rep = session
        .run(&w.kernel, launch, technique)
        .map_err(|e| CommandError(format!("{}/{technique}: {e}", w.name)))?;
    let mut out = String::new();
    let _ = writeln!(out, "workload   : {} ({} CTAs)", w.name, launch.grid_ctas);
    let _ = writeln!(
        out,
        "arch       : {}",
        if half_rf {
            "GTX480 half RF (64 KB/SM)"
        } else {
            "GTX480 (128 KB/SM)"
        }
    );
    let _ = writeln!(out, "technique  : {technique}");
    if let Some(p) = rep.plan {
        let _ = writeln!(
            out,
            "plan       : |Bs|={} |Es|={} sections={} occupancy={} warps",
            p.bs, p.es, p.srp_sections, p.occupancy_warps
        );
    }
    let _ = writeln!(out, "cycles     : {}", rep.cycles());
    let _ = writeln!(out, "ipc        : {:.3}", rep.stats.ipc());
    let _ = writeln!(
        out,
        "occupancy  : {}% theoretical, {:.1} warps achieved",
        rep.occupancy_percent(),
        rep.stats.achieved_occupancy_warps()
    );
    if rep.stats.acquire_attempts > 0 {
        let _ = writeln!(
            out,
            "acquires   : {} attempts, {:.1}% successful",
            rep.stats.acquire_attempts,
            100.0 * rep.acquire_success_rate()
        );
    }
    if rep.stats.spills > 0 {
        let _ = writeln!(out, "spills     : {}", rep.stats.spills);
    }
    let _ = writeln!(out, "storage    : +{} bits/SM", rep.storage_overhead_bits);
    let _ = writeln!(out, "checksum   : {:#018x}", rep.stats.checksum);
    Ok(out)
}

/// `bench-loop ...` — wall-clock the device loop with cycle skipping on vs
/// off and write the measurements to `out_path` as JSON. The second element
/// of the pair is the process exit code: 1 when the two loops disagree on
/// any statistic, or when skipping is more than 10% slower overall.
///
/// Runs go through [`Session`] directly — never the batch [`Runner`], whose
/// result cache would satisfy repeat runs without simulating and falsify
/// the timings.
pub fn bench_loop(
    apps: &[String],
    iters: usize,
    out_path: &str,
    sm_workers: Option<u32>,
) -> Result<(String, i32), CommandError> {
    use regmutex_server::json::Json;
    use std::time::Instant;

    // (row label, workload, grid override)
    let mut basket: Vec<(String, Workload, Option<u32>)> = Vec::new();
    if apps.is_empty() {
        // Default basket: a memory-latency-dominated workload at full
        // occupancy, the same workload at minimal occupancy (one CTA per
        // simulated SM — long fully stalled stretches, the skip loop's best
        // case), and a control-heavy one as the adversarial control.
        let num_sms = GpuConfig::gtx480().num_sms;
        basket.push(("Gaussian".into(), lookup("Gaussian")?, None));
        basket.push(("Gaussian-lowocc".into(), lookup("Gaussian")?, Some(num_sms)));
        basket.push(("BFS".into(), lookup("BFS")?, None));
    } else {
        for a in apps {
            basket.push((a.clone(), lookup(a)?, None));
        }
    }

    let mut out = String::new();
    let mut rows: Vec<Json> = Vec::new();
    let mut code = 0;
    let (mut skip_total_ms, mut tick_total_ms) = (0.0f64, 0.0f64);
    let _ = writeln!(
        out,
        "simulation-loop benchmark — median wall clock of {iters} run(s) per mode\n"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>10} {:>10} {:>8}",
        "workload", "cycles", "skip ms", "tick ms", "speedup"
    );
    for (label, w, ctas) in &basket {
        let launch = LaunchConfig::new(ctas.unwrap_or(w.grid_ctas));
        let mut medians = [0.0f64; 2];
        let mut reports = Vec::with_capacity(2);
        for (mode, skipping) in [true, false].into_iter().enumerate() {
            let mut cfg = config(false);
            cfg.cycle_skipping = skipping;
            let session = Session::new(cfg);
            let compiled = session
                .compile(&w.kernel)
                .map_err(|e| CommandError(format!("{label}: {e}")))?;
            let mut walls = Vec::with_capacity(iters);
            let mut rep = None;
            for _ in 0..iters {
                let t0 = Instant::now();
                let r = session
                    .run_compiled(&compiled, launch, Technique::RegMutex)
                    .map_err(|e| CommandError(format!("{label}: {e}")))?;
                walls.push(t0.elapsed().as_secs_f64() * 1e3);
                rep = Some(r);
            }
            walls.sort_by(f64::total_cmp);
            medians[mode] = walls[walls.len() / 2];
            reports.push(rep.expect("iters >= 1"));
        }
        let [skip_ms, tick_ms] = medians;
        skip_total_ms += skip_ms;
        tick_total_ms += tick_ms;

        // The two loops must agree on every statistic except the loop's own
        // accounting of itself.
        let strip = |r: &regmutex::RunReport| {
            let mut s = r.stats.clone();
            s.skipped_cycles = 0;
            s.step_calls = 0;
            s
        };
        if strip(&reports[0]) != strip(&reports[1]) {
            let _ = writeln!(
                out,
                "FAIL: {label}: cycle skipping changed the simulation\n  skip: {:?}\n  tick: {:?}",
                reports[0].stats, reports[1].stats
            );
            code = 1;
        }
        let cycles = reports[0].cycles();
        let _ = writeln!(
            out,
            "{label:<18} {cycles:>12} {skip_ms:>10.2} {tick_ms:>10.2} {:>7.1}x",
            tick_ms / skip_ms.max(1e-9)
        );
        for (skipping, wall_ms) in [(true, skip_ms), (false, tick_ms)] {
            rows.push(Json::Obj(vec![
                ("workload".into(), Json::Str(label.clone())),
                ("cycles".into(), Json::U64(cycles)),
                ("wall_ms".into(), Json::F64(wall_ms)),
                (
                    "cycles_per_sec".into(),
                    Json::F64(cycles as f64 / (wall_ms / 1e3).max(1e-12)),
                ),
                ("skipping".into(), Json::Bool(skipping)),
                ("simulated_sms".into(), Json::U64(1)),
                ("sm_workers".into(), Json::U64(1)),
            ]));
        }
    }

    // The workers dimension: the same basket as whole-device simulations
    // (every SM instantiated, uneven CTA tails and all), stepped serially
    // and sharded over `par_workers` device-loop threads. The parallel loop
    // is a wall-clock knob only, so the stats must be *bit*-identical —
    // including the engine's own meta-counters.
    let par_workers = sm_workers
        .or_else(|| {
            std::env::var("REGMUTEX_SM_WORKERS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or(4);
    let device_sms = config(false).num_sms;
    let _ = writeln!(
        out,
        "
whole-device loop — {device_sms} simulated SMs, serial vs {par_workers} workers
"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>10} {:>10} {:>8}",
        "workload", "cycles", "serial ms", "shard ms", "speedup"
    );
    for (label, w, ctas) in &basket {
        let launch = LaunchConfig::new(ctas.unwrap_or(w.grid_ctas));
        let mut medians = [0.0f64; 2];
        let mut reports = Vec::with_capacity(2);
        for (mode, workers) in [1, par_workers].into_iter().enumerate() {
            let mut cfg = config(false);
            cfg.simulated_sms = cfg.num_sms;
            cfg.sm_workers = workers;
            let session = Session::new(cfg);
            let compiled = session
                .compile(&w.kernel)
                .map_err(|e| CommandError(format!("{label}: {e}")))?;
            let mut walls = Vec::with_capacity(iters);
            let mut rep = None;
            for _ in 0..iters {
                let t0 = Instant::now();
                let r = session
                    .run_compiled(&compiled, launch, Technique::RegMutex)
                    .map_err(|e| CommandError(format!("{label}: {e}")))?;
                walls.push(t0.elapsed().as_secs_f64() * 1e3);
                rep = Some(r);
            }
            walls.sort_by(f64::total_cmp);
            medians[mode] = walls[walls.len() / 2];
            reports.push(rep.expect("iters >= 1"));
        }
        let [serial_ms, shard_ms] = medians;
        if reports[0].stats != reports[1].stats {
            let _ = writeln!(
                out,
                "FAIL: {label}: sharding the device loop changed the simulation
                   serial: {:?}
  shard:  {:?}",
                reports[0].stats, reports[1].stats
            );
            code = 1;
        }
        let cycles = reports[0].cycles();
        let _ = writeln!(
            out,
            "{label:<18} {cycles:>12} {serial_ms:>10.2} {shard_ms:>10.2} {:>7.1}x",
            serial_ms / shard_ms.max(1e-9)
        );
        for (workers, wall_ms) in [(1, serial_ms), (par_workers, shard_ms)] {
            rows.push(Json::Obj(vec![
                ("workload".into(), Json::Str(label.clone())),
                ("cycles".into(), Json::U64(cycles)),
                ("wall_ms".into(), Json::F64(wall_ms)),
                (
                    "cycles_per_sec".into(),
                    Json::F64(cycles as f64 / (wall_ms / 1e3).max(1e-12)),
                ),
                ("skipping".into(), Json::Bool(true)),
                ("simulated_sms".into(), Json::U64(u64::from(device_sms))),
                ("sm_workers".into(), Json::U64(u64::from(workers))),
            ]));
        }
    }

    // The skip loop must never be a real regression: allow 10% plus a small
    // absolute slack so sub-millisecond baskets don't flake.
    if skip_total_ms > 1.10 * tick_total_ms + 5.0 {
        let _ = writeln!(
            out,
            "FAIL: skipping total {skip_total_ms:.2} ms > 1.10 x tick total {tick_total_ms:.2} ms + 5 ms"
        );
        code = 1;
    }
    let report = Json::Obj(vec![
        ("iters".into(), Json::U64(iters as u64)),
        ("rows".into(), Json::Arr(rows)),
    ]);
    std::fs::write(out_path, report.encode() + "\n")
        .map_err(|e| CommandError(format!("write {out_path}: {e}")))?;
    let _ = writeln!(
        out,
        "\ntotal: skip {skip_total_ms:.2} ms vs tick {tick_total_ms:.2} ms ({:.1}x); wrote {out_path}",
        tick_total_ms / skip_total_ms.max(1e-9)
    );
    Ok((out, code))
}

/// `compare <app>`
pub fn compare(app: &str, half_rf: bool, jobs: Option<usize>) -> Result<String, CommandError> {
    let w = lookup(app)?;
    let cfg = config(half_rf);
    let launch = w.launch();
    let runner = Runner::new(jobs.unwrap_or_else(default_jobs));
    let specs: Vec<JobSpec> = ALL_TECHNIQUES
        .iter()
        .map(|&t| JobSpec::new(format!("{}/{t}", w.name), &w.kernel, &cfg, launch, t))
        .collect();
    let mut reports = Vec::with_capacity(specs.len());
    for (result, spec) in runner.run_all(&specs).into_iter().zip(&specs) {
        reports.push(result.map_err(|e| CommandError(format!("{}: {e}", spec.label)))?);
    }
    let base = reports
        .iter()
        .find(|r| r.technique == Technique::Baseline)
        .expect("ALL_TECHNIQUES includes the baseline");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} — baseline {} cycles, occupancy {}%\n",
        w.name,
        if half_rf { "half RF" } else { "GTX480" },
        base.cycles(),
        base.occupancy_percent()
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10} {:>12}",
        "technique", "cycles", "reduction", "occupancy", "storage bits"
    );
    for rep in &reports {
        if rep.stats.checksum != base.stats.checksum {
            return Err(CommandError(format!(
                "{}: functional divergence",
                rep.technique
            )));
        }
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>9.1}% {:>9}% {:>12}",
            rep.technique.to_string(),
            rep.cycles(),
            cycle_reduction_percent(base, rep),
            rep.occupancy_percent(),
            rep.storage_overhead_bits
        );
    }
    Ok(out)
}

/// `trace <app>`
pub fn trace(app: &str, max_steps: usize) -> Result<String, CommandError> {
    let w = lookup(app)?;
    let t = live_trace(&w.kernel, max_steps);
    let mut out = String::new();
    let _ = writeln!(out, "# {} — live% per executed instruction", w.name);
    let _ = writeln!(out, "instruction,live_percent");
    for (i, p) in t.percentages().iter().enumerate() {
        let _ = writeln!(out, "{i},{p:.2}");
    }
    if t.truncated {
        let _ = writeln!(out, "# truncated at {max_steps} steps");
    }
    Ok(out)
}

/// The sweep's durable campaign state: a checksummed journal pinning the
/// workload identity and recording per-job completions, plus the set of
/// fingerprints a previous run already finished. Results themselves live
/// in the content-addressed [`DiskTier`] the runner probes before
/// simulating, so replayed rows cost a disk read, not a simulation.
struct SweepJournal {
    journal: Journal,
    replayed: HashSet<u64>,
}

impl SweepJournal {
    fn meta(app: &str) -> String {
        format!("meta kind=sweep app={app}")
    }

    fn open(dir: &Path, app: &str, resume: bool) -> Result<SweepJournal, CommandError> {
        let path = dir.join("journal.log");
        if !resume {
            let mut journal = Journal::create(&path).map_err(|e| {
                CommandError(format!("cannot create journal in {}: {e}", dir.display()))
            })?;
            journal.append(&Self::meta(app));
            journal.sync();
            return Ok(SweepJournal {
                journal,
                replayed: HashSet::new(),
            });
        }
        let (journal, replay) =
            Journal::open(&path).map_err(|e| CommandError(format!("open journal: {e}")))?;
        for d in &replay.diagnostics {
            eprintln!("[sweep] journal recovery: {d}");
        }
        let mut records = replay.records.iter();
        match records.next() {
            Some(meta) if *meta == Self::meta(app) => {}
            Some(meta) => {
                return Err(CommandError(format!(
                    "journal campaign mismatch: journal has `{meta}`, this invocation \
                     is `{}`; refusing to resume",
                    Self::meta(app)
                )));
            }
            None => return SweepJournal::open(dir, app, false),
        }
        let replayed = records
            .filter_map(|r| {
                r.strip_prefix("job-ok fp=")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
            })
            .collect();
        Ok(SweepJournal { journal, replayed })
    }

    fn job_ok(&mut self, fp: u64) {
        if !self.replayed.contains(&fp) {
            self.journal.append(&format!("job-ok fp={fp:016x}"));
        }
    }
}

/// `sweep <app>`. The second element of the pair is the process exit code:
/// 0 when every `|Es|` row simulated, 3 when any row errored (the table
/// still renders — partial results beat none), [`CHECKPOINT_EXIT`] when a
/// journaled run was interrupted by SIGINT/SIGTERM.
pub fn sweep(
    app: &str,
    jobs: Option<usize>,
    journal_dir: Option<&str>,
    resume: bool,
) -> Result<(String, i32), CommandError> {
    let w = lookup(app)?;
    let cfg = w.table_config();
    let mut runner = Runner::new(jobs.unwrap_or_else(default_jobs));
    const ES_VALUES: [u16; 6] = [2, 4, 6, 8, 10, 12];

    let mut specs = vec![JobSpec::new(
        format!("{}/baseline", w.name),
        &w.kernel,
        &cfg,
        w.launch(),
        Technique::Baseline,
    )];
    for es in ES_VALUES {
        specs.push(
            JobSpec::new(
                format!("{}/|Es|={es}", w.name),
                &w.kernel,
                &cfg,
                w.launch(),
                Technique::RegMutex,
            )
            .with_options(CompileOptions {
                force_es: Some(es),
                force_apply: true,
            }),
        );
    }
    let collected = match journal_dir {
        None => runner.run_all(&specs),
        Some(dir) => {
            // Durable mode: persist results content-addressed, journal
            // completions, and poll for SIGINT/SIGTERM between batches.
            signal::install();
            let dir = Path::new(dir);
            let tier = DiskTier::shared(dir).map_err(|e| {
                CommandError(format!("open result store in {}: {e}", dir.display()))
            })?;
            runner.set_tier(tier);
            let mut journal = SweepJournal::open(dir, app, resume)?;
            if resume && !journal.replayed.is_empty() {
                eprintln!(
                    "[sweep] resuming: {} of {} jobs already journaled",
                    journal.replayed.len(),
                    specs.len()
                );
            }
            let mut collected = Vec::with_capacity(specs.len());
            for batch in specs.chunks(runner.jobs().max(1)) {
                if signal::triggered() {
                    journal.journal.sync();
                    let msg =
                        checkpoint_hint("sweep", dir, collected.len() as u64, specs.len() as u64);
                    eprint!("{msg}");
                    return Ok((String::new(), CHECKPOINT_EXIT));
                }
                let results = runner.run_all(batch);
                for (result, spec) in results.iter().zip(batch) {
                    if result.is_ok() {
                        journal.job_ok(spec.fingerprint());
                    }
                }
                collected.extend(results);
            }
            journal.journal.sync();
            collected
        }
    };
    let mut results = collected.into_iter();
    let base = results
        .next()
        .expect("baseline job submitted")
        .map_err(|e| CommandError(format!("{}/baseline: {e}", w.name)))?;

    let heuristic = Session::new(cfg.clone())
        .compile(&w.kernel)
        .map_err(|e| CommandError(e.to_string()))?
        .plan
        .map(|p| p.es);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} |Es| sweep (baseline {} cycles; * = heuristic pick)\n",
        w.name,
        base.cycles()
    );
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>10} {:>10} {:>9}",
        "|Es|", "cycles", "reduction", "occupancy", "acq-rate"
    );
    let mut failed = false;
    for (es, result) in ES_VALUES.into_iter().zip(results) {
        match result {
            Ok(rep) if rep.plan.is_some() => {
                let mark = if heuristic == Some(es) { "*" } else { " " };
                let _ = writeln!(
                    out,
                    "{es:>4}{mark} {:>10} {:>9.1}% {:>9}% {:>8.1}%",
                    rep.cycles(),
                    cycle_reduction_percent(&base, &rep),
                    rep.occupancy_percent(),
                    100.0 * rep.acquire_success_rate()
                );
            }
            Ok(_) => {
                let _ = writeln!(out, "{es:>5} {:>10}", "not viable");
            }
            Err(e) => {
                failed = true;
                let _ = writeln!(out, "{es:>5} {}/regmutex |Es|={es}: error: {e}", w.name);
            }
        }
    }
    Ok((out, if failed { 3 } else { 0 }))
}

/// `chaos [<app>...]`. The second element of the pair is the process exit
/// code: 1 when the campaign observed silent corruption, or when
/// `expect_detections` is set and some fault class was never caught;
/// [`CHECKPOINT_EXIT`] when a journaled run was interrupted.
#[allow(clippy::too_many_arguments)]
pub fn chaos(
    apps: &[String],
    seeds: u64,
    technique: Technique,
    jobs: Option<usize>,
    watchdog_cycles: Option<u64>,
    stall_multiplier: Option<u32>,
    expect_detections: bool,
    journal_dir: Option<&str>,
    resume: bool,
) -> Result<(String, i32), CommandError> {
    let mut spec = CampaignSpec::default_campaign(jobs.unwrap_or_else(default_jobs));
    if !apps.is_empty() {
        spec.workloads = apps.to_vec();
    }
    spec.seeds = seeds;
    spec.technique = technique;
    spec.watchdog_cycles = watchdog_cycles;
    spec.stall_multiplier = stall_multiplier;
    let report = match journal_dir {
        None => run_campaign(&spec).map_err(CommandError)?,
        Some(dir) => {
            signal::install();
            let dir = Path::new(dir);
            let journal = if resume {
                ChaosJournal::resume(dir, &spec)
            } else {
                ChaosJournal::create(dir, &spec)
            }
            .map_err(CommandError)?;
            if resume && journal.completed() > 0 {
                eprintln!(
                    "[chaos] resuming: {} injections already journaled",
                    journal.completed()
                );
            }
            let cancel: &(dyn Fn() -> bool + Sync) = &signal::triggered;
            match run_campaign_durable(&spec, Some(&journal), Some(cancel)).map_err(CommandError)? {
                ChaosRun::Complete(report) => report,
                ChaosRun::Checkpointed { completed, total } => {
                    let msg = checkpoint_hint("chaos", dir, completed as u64, total as u64);
                    eprint!("{msg}");
                    return Ok((String::new(), CHECKPOINT_EXIT));
                }
            }
        }
    };

    let mut out = report.render();
    let mut code = 0;
    if report.silent() > 0 {
        let _ = writeln!(out, "FAIL: the safety net let corruption through");
        code = 1;
    }
    if expect_detections && !report.all_classes_detected() {
        let _ = writeln!(
            out,
            "FAIL: --expect-detections set but some fault class was never caught"
        );
        code = 1;
    }
    Ok((out, code))
}

/// `serve ...` — blocks until SIGINT/SIGTERM or `POST /v1/shutdown`.
#[allow(clippy::too_many_arguments)]
pub fn serve(
    addr: String,
    workers: Option<usize>,
    queue: usize,
    cache_mb: usize,
    cycle_budget: Option<u64>,
    max_connections: usize,
    sm_workers: Option<u32>,
    client_rate: f64,
    client_burst: f64,
    cache_dir: Option<String>,
) -> Result<(), CommandError> {
    let env = std::env::var("REGMUTEX_JOBS").ok();
    let sim_workers = workers
        .or_else(|| env.and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0))
        .unwrap_or_else(default_jobs);
    regmutex_server::serve_until_shutdown(ServerConfig {
        addr,
        sim_workers,
        queue_capacity: queue,
        cache_budget: cache_mb.saturating_mul(1024 * 1024),
        cycle_budget,
        max_connections,
        // 0 = auto: each job's device loop resolves REGMUTEX_SM_WORKERS.
        sm_workers: sm_workers.unwrap_or(0),
        client_rate,
        client_burst,
        cache_dir,
        ..ServerConfig::default()
    })
    .map_err(|e| CommandError(format!("serve: {e}")))
}

/// `coordinator ...` — run the Fig 7 sweep across a fleet of workers.
/// Returns `(sweep output, aggregated Prometheus metrics, exit code)`;
/// the metrics go to stderr so the sweep on stdout stays byte-comparable
/// to the local golden. Exit code 3 when any row is a labeled error row
/// (a give-up after exhausting retries — never a missing row);
/// [`CHECKPOINT_EXIT`] when a journaled run was interrupted.
#[allow(clippy::too_many_arguments)]
pub fn coordinator(
    workers: Vec<String>,
    seed: u64,
    threads: usize,
    max_attempts: u32,
    cycle_budget: Option<u64>,
    journal_dir: Option<&str>,
    resume: bool,
) -> Result<(String, String, i32), CommandError> {
    let mut coordinator = Coordinator::new(FleetConfig {
        workers,
        seed,
        dispatch_threads: threads,
        max_attempts,
        ..FleetConfig::default()
    })
    .map_err(CommandError)?;
    if let Some(dir) = journal_dir {
        signal::install();
        let dir = Path::new(dir);
        let tier = DiskTier::shared(dir)
            .map_err(|e| CommandError(format!("open result store in {}: {e}", dir.display())))?;
        coordinator.set_tier(tier);
        // The campaign identity pins the job matrix (which jobs run), not
        // the throughput knobs — the determinism contract lets a resumed
        // run use a different worker list, seed, or thread count.
        let campaign = format!(
            "fig07 budget={}",
            cycle_budget.map_or_else(|| "-".to_string(), |b| b.to_string())
        );
        let journal = if resume {
            FleetJournal::resume(dir, &campaign)
        } else {
            FleetJournal::create(dir, &campaign)
        }
        .map_err(CommandError)?;
        let journal = Arc::new(journal);
        if resume {
            if journal.completed() > 0 {
                eprintln!(
                    "[coordinator] resuming: {} jobs already journaled",
                    journal.completed()
                );
            }
            // Restore journaled circuit-breaker state; execute() re-probes
            // before dispatching so a recovered worker is re-admitted.
            coordinator.quarantine_workers(journal.quarantined());
        }
        coordinator.set_journal(journal);
        coordinator.set_cancel(Arc::new(signal::triggered));
    }
    let source = Fig07Source;
    let mut jobs = source.jobs();
    if cycle_budget.is_some() {
        for j in &mut jobs {
            j.cycle_budget = cycle_budget;
        }
    }
    let results = match coordinator.execute(&jobs) {
        Ok(results) => results,
        Err(e) if is_checkpoint(&e) => {
            let dir = journal_dir.unwrap_or_default();
            eprintln!("coordinator: {e}; resume with --journal {dir} --resume");
            return Ok((String::new(), coordinator.render_metrics(), CHECKPOINT_EXIT));
        }
        Err(e) => return Err(CommandError(e)),
    };
    let (out, code) = source.render(&jobs, &results);
    Ok((out, coordinator.render_metrics(), code))
}

/// `chaos-fleet ...` — the network-fault campaign. The second element of
/// the pair is the process exit code: 1 when any job was lost or any row
/// silently wrong.
pub fn chaos_fleet(
    seeds: u64,
    apps: Vec<String>,
    cycle_budget: Option<u64>,
    trigger_after: usize,
    sim_workers: usize,
) -> Result<(String, i32), CommandError> {
    let mut spec = FleetCampaignSpec {
        seeds: (1..=seeds).collect(),
        cycle_budget,
        trigger_after,
        sim_workers,
        ..FleetCampaignSpec::default()
    };
    if !apps.is_empty() {
        spec.app_sets = vec![apps];
    }
    let report = run_fleet_campaign(&spec).map_err(CommandError)?;
    Ok(report.render())
}

/// `loadgen --fleet ...` — drive the coordinator closed-loop.
pub fn fleet_loadgen(
    workers: Vec<String>,
    threads: usize,
    requests: usize,
    seed: u64,
    apps: Vec<String>,
    cycle_budget: Option<u64>,
) -> Result<String, CommandError> {
    let coordinator = Coordinator::new(FleetConfig {
        workers,
        seed,
        ..FleetConfig::default()
    })
    .map_err(CommandError)?;
    let report = run_fleet_loadgen(
        &coordinator,
        &FleetLoadgenConfig {
            threads,
            requests,
            seed,
            apps,
            cycle_budget,
        },
    )
    .map_err(CommandError)?;
    let mut out = report.render();
    out.push('\n');
    if !report.nothing_dropped() {
        return Err(CommandError(format!(
            "fleet loadgen: {} of {} requests got no verdict\n{out}",
            report.total - (report.ok + report.job_errors + report.gave_up),
            report.total
        )));
    }
    Ok(out)
}

/// `fuzz ...` — mass kernel fuzzing with the differential oracle.
///
/// Three modes: `--replay FILE` re-runs one artifact (exit 0 iff its
/// documented outcome reproduces); `--fleet` shards the campaign across
/// workers' `/v1/fuzz` endpoints; otherwise a local campaign. In every
/// mode exit code 1 means a divergence (or a replay mismatch).
#[allow(clippy::too_many_arguments)]
pub fn fuzz(
    seed: u64,
    iters: u64,
    duration_secs: Option<u64>,
    jobs: Option<usize>,
    sm_workers: Option<u32>,
    cycle_budget: Option<u64>,
    max_divergences: u64,
    stats: Option<String>,
    replay: Option<String>,
    fault: Option<String>,
    no_minimize: bool,
    fleet: bool,
    workers: Vec<String>,
    journal_dir: Option<&str>,
    resume: bool,
) -> Result<(String, i32), CommandError> {
    let mut oracle = regmutex_fuzz::OracleConfig {
        sm_workers: sm_workers.unwrap_or(0),
        ..regmutex_fuzz::OracleConfig::default()
    };
    if let Some(b) = cycle_budget {
        oracle.cycle_budget = b;
    }

    if let Some(path) = replay {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CommandError(format!("read {path}: {e}")))?;
        let artifact = regmutex_fuzz::Artifact::parse(&text)
            .map_err(|e| CommandError(format!("{path}: {e}")))?;
        let runner = Runner::new(jobs.unwrap_or_else(default_jobs));
        return Ok(regmutex_fuzz::replay_artifact(&artifact, &runner, &oracle));
    }

    if fleet {
        let started = std::time::Instant::now();
        let cfg = regmutex_fleet::FuzzFanoutConfig {
            workers,
            seed,
            iters,
            cycle_budget: oracle.cycle_budget,
            minimize: !no_minimize,
            ..regmutex_fleet::FuzzFanoutConfig::default()
        };
        let report = regmutex_fleet::run_fuzz_fanout(&cfg).map_err(CommandError)?;
        if let Some(path) = stats {
            std::fs::write(&path, report.to_json(started.elapsed().as_millis()))
                .map_err(|e| CommandError(format!("write {path}: {e}")))?;
        }
        return Ok(report.render(&cfg.workers));
    }

    let planted = match fault {
        Some(spec) => Some(
            regmutex_fuzz::parse_fault(&spec).map_err(|e| CommandError(format!("--fault: {e}")))?,
        ),
        None => None,
    };
    let cfg = regmutex_fuzz::CampaignConfig {
        seed,
        iters,
        duration: duration_secs.map(std::time::Duration::from_secs),
        oracle,
        fault: planted,
        minimize: !no_minimize,
        max_divergences,
        ..regmutex_fuzz::CampaignConfig::default()
    };
    let mut runner = Runner::new(jobs.unwrap_or_else(default_jobs));
    let report = match journal_dir {
        None => regmutex_fuzz::run_campaign(&cfg, &runner),
        Some(dir) => {
            signal::install();
            let dir = Path::new(dir);
            let tier = DiskTier::shared(dir).map_err(|e| {
                CommandError(format!("open result store in {}: {e}", dir.display()))
            })?;
            runner.set_tier(tier);
            let journal = if resume {
                regmutex_fuzz::FuzzJournal::resume(dir, &cfg)
            } else {
                regmutex_fuzz::FuzzJournal::create(dir, &cfg)
            }
            .map_err(CommandError)?;
            if resume && journal.completed() > 0 {
                eprintln!(
                    "[fuzz] resuming: {} kernels already journaled",
                    journal.completed()
                );
            }
            let cancel: &dyn Fn() -> bool = &signal::triggered;
            match regmutex_fuzz::run_campaign_durable(&cfg, &runner, Some(&journal), Some(cancel)) {
                regmutex_fuzz::FuzzRun::Complete(report) => report,
                regmutex_fuzz::FuzzRun::Checkpointed { completed, total } => {
                    let msg = checkpoint_hint("fuzz", dir, completed, total);
                    eprint!("{msg}");
                    return Ok((String::new(), CHECKPOINT_EXIT));
                }
            }
        }
    };
    if let Some(path) = stats {
        std::fs::write(&path, report.to_json())
            .map_err(|e| CommandError(format!("write {path}: {e}")))?;
    }
    Ok(report.render())
}

/// `loadgen ...`
#[allow(clippy::too_many_arguments)]
pub fn loadgen(
    addr: String,
    threads: usize,
    requests: usize,
    seed: u64,
    apps: Vec<String>,
    keep_alive: bool,
    pipeline: usize,
) -> Result<String, CommandError> {
    let report = regmutex_server::run_loadgen(&LoadgenConfig {
        addr,
        threads,
        requests,
        seed,
        apps,
        keep_alive,
        pipeline,
        ..LoadgenConfig::default()
    })
    .map_err(CommandError)?;
    let mut out = report.render();
    out.push('\n');
    if !report.nothing_dropped() {
        return Err(CommandError(format!(
            "loadgen: {} of {} requests got no response\n{out}",
            report.total - (report.ok + report.rejected + report.failed),
            report.total
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_mentions_all_16() {
        let out = list(false);
        assert_eq!(out.lines().count(), 17); // header + 16
        assert!(out.contains("BFS"));
        assert!(out.contains("TPACF"));
    }

    #[test]
    fn list_json_is_machine_readable() {
        let out = list(true);
        let parsed = regmutex_server::json::parse(out.trim()).expect("valid JSON");
        let arr = parsed.as_arr().expect("array");
        assert_eq!(arr.len(), 16);
        for w in arr {
            for field in [
                "name",
                "regs",
                "base_set",
                "threads_per_cta",
                "shmem_per_cta",
                "grid_ctas",
                "group",
            ] {
                assert!(w.get(field).is_some(), "missing {field}");
            }
        }
    }

    #[test]
    fn unknown_workload_reports_options() {
        let err = disasm("nope", false, false).unwrap_err();
        assert!(err.0.contains("available"));
    }

    #[test]
    fn disasm_transformed_contains_primitives() {
        let plain = disasm("BFS", false, false).unwrap();
        assert!(!plain.contains("acq.es"));
        let transformed = disasm("BFS", true, false).unwrap();
        assert!(transformed.contains("acq.es"));
        assert!(transformed.contains("rel.es"));
    }

    #[test]
    fn disasm_liveness_annotates() {
        let out = disasm("Gaussian", false, true).unwrap();
        assert!(out.contains("live]"));
    }

    #[test]
    fn run_reports_plan_and_cycles() {
        let out = run(
            "Gaussian",
            Technique::RegMutex,
            true,
            Some(30),
            None,
            None,
            None,
            false,
            None,
        )
        .unwrap();
        assert!(out.contains("plan"));
        assert!(out.contains("cycles"));
        assert!(out.contains("checksum"));
    }

    #[test]
    fn run_watchdog_flag_reaches_the_simulator() {
        // A 1-cycle watchdog must abort any real workload, and the error
        // must carry the workload/technique label.
        let err = run(
            "Gaussian",
            Technique::Baseline,
            true,
            Some(30),
            None,
            Some(1),
            None,
            false,
            None,
        )
        .unwrap_err();
        assert!(err.0.contains("Gaussian/baseline"), "{err}");
        assert!(err.0.contains("exceeded 1 cycles"), "{err}");
    }

    #[test]
    fn trace_emits_csv() {
        let out = trace("SAD", 100).unwrap();
        assert!(out.starts_with("# SAD"));
        assert!(out.lines().count() > 50);
    }

    #[test]
    fn compare_covers_all_techniques() {
        let out = compare("Gaussian", true, Some(2)).unwrap();
        for t in ["baseline", "regmutex", "regmutex-paired", "rfv", "owf"] {
            assert!(out.contains(t), "missing {t}");
        }
    }

    #[test]
    fn sweep_is_worker_count_independent() {
        let (serial, code) = sweep("BFS", Some(1), None, false).unwrap();
        let (parallel, _) = sweep("BFS", Some(4), None, false).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(code, 0);
        assert!(serial.contains("|Es|"));
    }

    #[test]
    fn coordinator_rejects_an_empty_fleet() {
        let err = coordinator(vec![], 1, 2, 3, None, None, false).unwrap_err();
        assert!(err.0.contains("fleet has no workers"), "{err}");
    }

    #[test]
    fn fleet_loadgen_rejects_unknown_apps_before_sending_traffic() {
        // The app filter is validated up front, so no worker is contacted
        // and the bogus address never matters.
        let err = fleet_loadgen(
            vec!["127.0.0.1:1".into()],
            1,
            1,
            1,
            vec!["nope".into()],
            None,
        )
        .unwrap_err();
        assert!(err.0.contains("no requested app"), "{err}");
    }

    #[test]
    fn fuzz_smoke_campaign_stats_and_replay() {
        // A tiny clean campaign, with the stats artifact on disk.
        let stats_path = std::env::temp_dir().join("regmutex_fuzz_cli_stats.json");
        let (out, code) = fuzz(
            0xfeed,
            12,
            None,
            Some(2),
            None,
            None,
            5,
            Some(stats_path.to_string_lossy().into_owned()),
            None,
            None,
            false,
            false,
            vec![],
            None,
            false,
        )
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verdict: CLEAN"), "{out}");
        let stats = std::fs::read_to_string(&stats_path).unwrap();
        assert!(stats.contains("\"kernels\":12"), "{stats}");
        let _ = std::fs::remove_file(&stats_path);

        // A planted fault must diverge (exit 1) and print an artifact.
        let (out, code) = fuzz(
            0xfa_017,
            60,
            None,
            Some(2),
            None,
            None,
            1,
            None,
            None,
            Some("stuck-srp-bit:severe:5:regmutex".into()),
            false,
            false,
            vec![],
            None,
            false,
        )
        .unwrap();
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("verdict: DIVERGENT"), "{out}");
        assert!(out.contains("# regmutex-fuzz artifact v1"), "{out}");

        // Extract the artifact from the report and replay it: exit 0.
        let artifact: String = out
            .lines()
            .skip_while(|l| !l.trim_start().starts_with("# regmutex-fuzz artifact"))
            .take_while(|l| !l.trim().is_empty())
            .map(|l| format!("{}\n", l.trim_start()))
            .collect();
        let artifact_path = std::env::temp_dir().join("regmutex_fuzz_cli_artifact.txt");
        std::fs::write(&artifact_path, &artifact).unwrap();
        let (out, code) = fuzz(
            0,
            1,
            None,
            Some(2),
            None,
            None,
            1,
            None,
            Some(artifact_path.to_string_lossy().into_owned()),
            None,
            false,
            false,
            vec![],
            None,
            false,
        )
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verdict: REPRODUCED"), "{out}");
        let _ = std::fs::remove_file(&artifact_path);

        // A malformed fault spec is a structured error.
        assert!(fuzz(
            1,
            1,
            None,
            Some(1),
            None,
            None,
            1,
            None,
            None,
            Some("nope".into()),
            false,
            false,
            vec![],
            None,
            false,
        )
        .is_err());
    }

    #[test]
    fn sweep_journal_roundtrip_is_byte_identical() {
        let dir =
            std::env::temp_dir().join(format!("rmx-cli-sweep-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().into_owned();

        let (golden, _) = sweep("BFS", Some(2), None, false).unwrap();
        let (journaled, code) = sweep("BFS", Some(2), Some(&dir_s), false).unwrap();
        assert_eq!(code, 0);
        assert_eq!(journaled, golden, "journaling must not change the output");
        assert!(dir.join("journal.log").is_file());
        assert!(dir.join("store").is_dir());

        // Resume after completion: every row replays from the durable
        // tier, at a different worker count, byte-identically.
        let (resumed, code) = sweep("BFS", Some(1), Some(&dir_s), true).unwrap();
        assert_eq!(code, 0);
        assert_eq!(resumed, golden);

        // A journal from a different campaign is refused.
        let err = sweep("SAD", Some(1), Some(&dir_s), true).unwrap_err();
        assert!(err.0.contains("refusing to resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_smoke_is_clean_and_exit_zero() {
        let (out, code) = chaos(
            &["BFS".into()],
            1,
            Technique::RegMutex,
            Some(4),
            None,
            None,
            false,
            None,
            false,
        )
        .unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("silent corruption: NONE"), "{out}");
        assert!(out.contains("chaos campaign"), "{out}");
    }
}
