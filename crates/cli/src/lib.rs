//! # regmutex-cli
//!
//! Command-line driver for the RegMutex reproduction. The library half holds
//! the argument grammar and the command implementations so they can be unit
//! tested; `main.rs` is a thin shell.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};
