//! Thin shell over the command library.

use regmutex_cli::{commands, parse, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", regmutex_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    let result = match cmd {
        Command::Help => {
            print!("{}", regmutex_cli::args::USAGE);
            return;
        }
        Command::List { json } => Ok(commands::list(json)),
        Command::Disasm {
            app,
            transformed,
            liveness,
        } => commands::disasm(&app, transformed, liveness),
        Command::Run {
            app,
            technique,
            half_rf,
            ctas,
            force_es,
            watchdog_cycles,
            stall_multiplier,
            no_cycle_skip,
            sm_workers,
        } => commands::run(
            &app,
            technique,
            half_rf,
            ctas,
            force_es,
            watchdog_cycles,
            stall_multiplier,
            no_cycle_skip,
            sm_workers,
        ),
        Command::BenchLoop {
            apps,
            iters,
            out,
            sm_workers,
        } => {
            exit_with(commands::bench_loop(&apps, iters, &out, sm_workers));
        }
        Command::Compare { app, half_rf, jobs } => commands::compare(&app, half_rf, jobs),
        Command::Serve {
            addr,
            workers,
            queue,
            cache_mb,
            cycle_budget,
            max_connections,
            sm_workers,
            client_rate,
            client_burst,
            cache_dir,
        } => {
            match commands::serve(
                addr,
                workers,
                queue,
                cache_mb,
                cycle_budget,
                max_connections,
                sm_workers,
                client_rate,
                client_burst,
                cache_dir,
            ) {
                Ok(()) => return,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Command::Loadgen {
            addr,
            threads,
            requests,
            seed,
            apps,
            fleet,
            workers,
            cycle_budget,
            keep_alive,
            pipeline,
        } => {
            if fleet {
                commands::fleet_loadgen(workers, threads, requests, seed, apps, cycle_budget)
            } else {
                commands::loadgen(addr, threads, requests, seed, apps, keep_alive, pipeline)
            }
        }
        Command::Coordinator {
            workers,
            seed,
            threads,
            max_attempts,
            cycle_budget,
            journal,
            resume,
        } => match commands::coordinator(
            workers,
            seed,
            threads,
            max_attempts,
            cycle_budget,
            journal.as_deref(),
            resume,
        ) {
            Ok((out, metrics, code)) => {
                print!("{out}");
                eprint!("{metrics}");
                std::process::exit(code);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Command::ChaosFleet {
            seeds,
            apps,
            cycle_budget,
            trigger_after,
            sim_workers,
        } => {
            exit_with(commands::chaos_fleet(
                seeds,
                apps,
                cycle_budget,
                trigger_after,
                sim_workers,
            ));
        }
        Command::Fuzz {
            seed,
            iters,
            duration_secs,
            jobs,
            sm_workers,
            cycle_budget,
            max_divergences,
            stats,
            replay,
            fault,
            no_minimize,
            fleet,
            workers,
            journal,
            resume,
        } => {
            exit_with(commands::fuzz(
                seed,
                iters,
                duration_secs,
                jobs,
                sm_workers,
                cycle_budget,
                max_divergences,
                stats,
                replay,
                fault,
                no_minimize,
                fleet,
                workers,
                journal.as_deref(),
                resume,
            ));
        }
        Command::Trace { app, max_steps } => commands::trace(&app, max_steps),
        Command::Sweep {
            app,
            jobs,
            journal,
            resume,
        } => {
            exit_with(commands::sweep(&app, jobs, journal.as_deref(), resume));
        }
        Command::Chaos {
            apps,
            seeds,
            technique,
            jobs,
            watchdog_cycles,
            stall_multiplier,
            expect_detections,
            journal,
            resume,
        } => {
            exit_with(commands::chaos(
                &apps,
                seeds,
                technique,
                jobs,
                watchdog_cycles,
                stall_multiplier,
                expect_detections,
                journal.as_deref(),
                resume,
            ));
        }
    };
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Print a command's output and exit with its code (commands whose exit
/// status encodes partial failure rather than all-or-nothing success).
fn exit_with(result: Result<(String, i32), commands::CommandError>) -> ! {
    match result {
        Ok((out, code)) => {
            print!("{out}");
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
