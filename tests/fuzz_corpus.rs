//! Regression corpus: every checked-in minimized fuzz artifact in
//! `tests/corpus/` must replay to its recorded expectation, byte-for-byte
//! deterministically. Divergence artifacts additionally stay small — the
//! point of checking them in is that a human can read the kernel.

use regmutex_bench::Runner;
use regmutex_repro::fuzz::{replay, replay_artifact, Artifact, Expectation, OracleConfig};

fn corpus() -> Vec<(String, Artifact)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable artifact");
            let artifact = Artifact::parse(&text)
                .unwrap_or_else(|e| panic!("{name}: malformed artifact: {e}"));
            (name, artifact)
        })
        .collect()
}

#[test]
fn every_corpus_artifact_reproduces_deterministically() {
    let runner = Runner::new(2);
    let oracle = OracleConfig::default();
    let corpus = corpus();
    assert!(!corpus.is_empty(), "corpus must not be empty");
    for (name, artifact) in &corpus {
        let (r1, c1) = replay_artifact(artifact, &runner, &oracle);
        let (r2, c2) = replay_artifact(artifact, &runner, &oracle);
        assert_eq!(c1, 0, "{name}: expectation not reproduced:\n{r1}");
        assert_eq!(c2, 0, "{name}: second replay failed:\n{r2}");
        assert_eq!(r1, r2, "{name}: replay must be deterministic");
    }
}

#[test]
fn corpus_artifacts_are_small_and_cover_both_expectations() {
    let corpus = corpus();
    let mut agreements = 0usize;
    let mut fault_classes = std::collections::BTreeSet::new();
    for (name, artifact) in &corpus {
        let g = replay(artifact.seed, &artifact.trace);
        assert_eq!(
            g.trace, artifact.trace,
            "{name}: checked-in trace must be canonical"
        );
        match &artifact.expect {
            Expectation::Agreement => agreements += 1,
            Expectation::Divergence(..) => {
                assert!(
                    g.kernel.len() <= 40,
                    "{name}: divergence artifact too large ({} instructions)",
                    g.kernel.len()
                );
                let fault = artifact.fault.expect("divergence artifacts carry a fault");
                fault_classes.insert(fault.class.to_string());
            }
        }
    }
    assert!(agreements >= 1, "corpus needs an agreement artifact");
    assert!(
        fault_classes.len() >= 3,
        "corpus should span fault classes, got {fault_classes:?}"
    );
    // The oracle self-test promise: at least one planted-fault reproducer
    // minimized all the way down to a trivially readable kernel.
    assert!(
        corpus.iter().any(|(_, a)| {
            matches!(a.expect, Expectation::Divergence(..))
                && replay(a.seed, &a.trace).kernel.len() <= 25
        }),
        "at least one divergence artifact must be <= 25 instructions"
    );
}
