//! Property tests over the compiler passes themselves: liveness against a
//! brute-force reference on straight-line code, verifier guarantees on
//! transformed kernels, and heuristic viability rules.

mod common;

use proptest::prelude::*;
use regmutex_compiler::{
    analyze, barrier_live_max, compile, es_select, verify_transformed, CompileOptions,
};
use regmutex_isa::{ArchReg, Instr, Kernel, Op};
use regmutex_sim::{GpuConfig, KernelResources};

/// Brute-force liveness for straight-line code: a register is live-in at pc
/// if it is read at some pc' >= pc before being written.
fn brute_force_live_in(kernel: &Kernel, pc: usize, reg: u16) -> bool {
    for i in &kernel.instrs[pc..] {
        if i.srcs.iter().any(|s| s.0 == reg) {
            return true;
        }
        if i.dst == Some(ArchReg(reg)) {
            return false;
        }
    }
    false
}

/// Strategy: straight-line instruction sequences over 6 registers.
fn straight_line() -> impl Strategy<Value = Kernel> {
    prop::collection::vec((0u16..6, 0u16..6, 0u16..6, 0u8..4), 1..30).prop_map(|ops| {
        let mut instrs = Vec::new();
        for (d, a, b, kind) in ops {
            let instr = match kind {
                0 => Instr::new(Op::IAdd, Some(ArchReg(d)), vec![ArchReg(a), ArchReg(b)]),
                1 => Instr::new(Op::MovImm(u64::from(d) + 1), Some(ArchReg(d)), vec![]),
                2 => Instr::new(Op::Mov, Some(ArchReg(d)), vec![ArchReg(a)]),
                _ => Instr::new(Op::St(regmutex_isa::Space::Global), None, vec![
                    ArchReg(a),
                    ArchReg(b),
                ]),
            };
            instrs.push(instr);
        }
        instrs.push(Instr::new(Op::Exit, None, vec![]));
        Kernel {
            name: "straight".into(),
            instrs,
            regs_per_thread: 6,
            shmem_per_cta: 0,
            threads_per_cta: 32,
            seed: 0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Dataflow liveness equals the brute-force reference on straight-line
    /// code.
    #[test]
    fn liveness_matches_brute_force(kernel in straight_line()) {
        let lv = analyze(&kernel);
        for pc in 0..kernel.len() {
            for reg in 0..6u16 {
                prop_assert_eq!(
                    lv.live_in[pc].contains(usize::from(reg)),
                    brute_force_live_in(&kernel, pc, reg),
                    "pc {} reg {}", pc, reg
                );
            }
        }
    }

    /// Whatever the pipeline emits passes the static held-state verifier
    /// and structural validation (on random structured kernels).
    #[test]
    fn pipeline_output_verifies(kernel in common::kernel_strategy(), es in 1u16..5) {
        let cfg = GpuConfig::test_tiny();
        let compiled = compile(
            &kernel,
            &cfg,
            &CompileOptions { force_es: Some(es * 2), force_apply: true },
        ).expect("compile runs");
        compiled.kernel.validate().expect("transformed kernel valid");
        if let Some(plan) = compiled.plan {
            verify_transformed(&compiled.kernel, plan.bs).expect("verifier clean");
            // The plan satisfies both deadlock rules.
            prop_assert!(plan.srp_sections >= 1);
            let lv = analyze(&kernel);
            prop_assert!(plan.bs >= barrier_live_max(&kernel, &lv));
        }
    }

    /// Heuristic invariants: candidates partition the rounded register
    /// count, viable ones obey the deadlock rules, and the chosen one (if
    /// any) is viable.
    #[test]
    fn es_selection_invariants(regs in 6u16..64, tpc in 1u32..16, bl in 0u16..20) {
        let cfg = GpuConfig::gtx480();
        let res = KernelResources::new(regs, 0, tpc * 32);
        let sel = es_select::select(&cfg, res, bl);
        let total = cfg.round_regs(regs) as u16;
        prop_assert_eq!(sel.total_regs, total);
        for c in &sel.ranked {
            prop_assert_eq!(c.es + c.bs, total);
            if c.viable {
                prop_assert!(c.srp_sections >= 1);
                prop_assert!(c.bs >= bl);
                prop_assert!(c.es > 0);
            }
        }
        if let Some(chosen) = sel.chosen() {
            prop_assert!(chosen.viable);
            // No viable candidate has strictly better selection occupancy.
            for c in &sel.ranked {
                if c.viable {
                    prop_assert!(c.selection_warps <= chosen.selection_warps);
                }
            }
        }
    }

    /// Occupancy is monotonically non-increasing in register demand.
    #[test]
    fn occupancy_monotonic(tpc in 1u32..16, shmem in 0u32..24_000) {
        let cfg = GpuConfig::gtx480();
        let mut last = u32::MAX;
        for regs in 1..=64u16 {
            let occ = regmutex_sim::theoretical(
                &cfg,
                KernelResources::new(regs, shmem, tpc * 32),
            );
            prop_assert!(occ.warps <= last, "regs {}: {} > {}", regs, occ.warps, last);
            last = occ.warps;
        }
    }
}

/// Strategy: straight-line kernels over 10 registers ending in observable
/// stores, for compaction-focused properties.
fn straight_line_10() -> impl Strategy<Value = Kernel> {
    prop::collection::vec((0u16..10, 0u16..10, 0u16..10, 0u8..5), 4..40).prop_map(|ops| {
        let mut instrs = Vec::new();
        for (d, a, b, kind) in ops {
            let instr = match kind {
                0 => Instr::new(Op::IAdd, Some(ArchReg(d)), vec![ArchReg(a), ArchReg(b)]),
                1 => Instr::new(Op::MovImm(u64::from(d * 31 + a)), Some(ArchReg(d)), vec![]),
                2 => Instr::new(Op::Xor, Some(ArchReg(d)), vec![ArchReg(a), ArchReg(b)]),
                3 => Instr::new(
                    Op::IMad,
                    Some(ArchReg(d)),
                    vec![ArchReg(a), ArchReg(b), ArchReg(d)],
                ),
                _ => Instr::new(
                    Op::St(regmutex_isa::Space::Global),
                    None,
                    vec![ArchReg(a), ArchReg(b)],
                ),
            };
            instrs.push(instr);
        }
        // Make every register's final value observable.
        for i in 0..10u16 {
            instrs.push(Instr::new(
                Op::St(regmutex_isa::Space::Global),
                None,
                vec![ArchReg(i), ArchReg((i + 1) % 10)],
            ));
        }
        instrs.push(Instr::new(Op::Exit, None, vec![]));
        Kernel {
            name: "sl10".into(),
            instrs,
            regs_per_thread: 10,
            shmem_per_cta: 0,
            threads_per_cta: 32,
            seed: 3,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Compaction correctness, checked by execution: for any straight-line
    /// program and any base-set size the pipeline accepts, the transformed
    /// kernel leaves no extended-index access outside held regions AND
    /// produces the exact same store checksum as the original.
    #[test]
    fn compaction_preserves_straightline_semantics(
        kernel in straight_line_10(),
        es in 2u16..8,
    ) {
        use regmutex::{Session, Technique};
        use regmutex_sim::LaunchConfig;

        let cfg = GpuConfig::test_tiny();
        let compiled = compile(
            &kernel,
            &cfg,
            &CompileOptions { force_es: Some(es & !1), force_apply: true },
        ).expect("compile runs");
        let Some(plan) = compiled.plan else { return Ok(()); };
        // Static index invariant via the verifier…
        verify_transformed(&compiled.kernel, plan.bs).expect("verifier clean");
        // …and dynamic equivalence via the simulator.
        let session = Session::with_options(
            cfg,
            CompileOptions { force_es: Some(es & !1), force_apply: true },
        );
        let launch = LaunchConfig::new(2);
        let base = session.run(&kernel, launch, Technique::Baseline).expect("baseline");
        let rm = session.run(&kernel, launch, Technique::RegMutex).expect("regmutex");
        prop_assert_eq!(base.stats.checksum, rm.stats.checksum);
    }
}
