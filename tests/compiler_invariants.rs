//! Property tests over the compiler passes themselves: liveness against a
//! brute-force reference on straight-line code, verifier guarantees on
//! transformed kernels, and heuristic viability rules.
//!
//! Cases are generated from fixed seeds (see `common::Rng`); the case number
//! in a failure message replays the input exactly.

mod common;

use common::Rng;
use regmutex_compiler::{
    analyze, barrier_live_max, compile, es_select, verify_transformed, CompileOptions,
};
use regmutex_isa::{ArchReg, Instr, Kernel, Op};
use regmutex_sim::{GpuConfig, KernelResources};

/// Brute-force liveness for straight-line code: a register is live-in at pc
/// if it is read at some pc' >= pc before being written.
fn brute_force_live_in(kernel: &Kernel, pc: usize, reg: u16) -> bool {
    for i in &kernel.instrs[pc..] {
        if i.srcs.iter().any(|s| s.0 == reg) {
            return true;
        }
        if i.dst == Some(ArchReg(reg)) {
            return false;
        }
    }
    false
}

/// Generate a straight-line instruction sequence over 6 registers.
fn gen_straight_line(rng: &mut Rng) -> Kernel {
    let n = rng.range(1, 30);
    let mut instrs = Vec::new();
    for _ in 0..n {
        let d = rng.below(6) as u16;
        let a = rng.below(6) as u16;
        let b = rng.below(6) as u16;
        let instr = match rng.below(4) {
            0 => Instr::new(Op::IAdd, Some(ArchReg(d)), vec![ArchReg(a), ArchReg(b)]),
            1 => Instr::new(Op::MovImm(u64::from(d) + 1), Some(ArchReg(d)), vec![]),
            2 => Instr::new(Op::Mov, Some(ArchReg(d)), vec![ArchReg(a)]),
            _ => Instr::new(
                Op::St(regmutex_isa::Space::Global),
                None,
                vec![ArchReg(a), ArchReg(b)],
            ),
        };
        instrs.push(instr);
    }
    instrs.push(Instr::new(Op::Exit, None, vec![]));
    Kernel {
        name: "straight".into(),
        instrs,
        regs_per_thread: 6,
        shmem_per_cta: 0,
        threads_per_cta: 32,
        seed: 0,
    }
}

/// Dataflow liveness equals the brute-force reference on straight-line code.
#[test]
fn liveness_matches_brute_force() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xD004 + case);
        let kernel = gen_straight_line(&mut rng);
        let lv = analyze(&kernel);
        for pc in 0..kernel.len() {
            for reg in 0..6u16 {
                assert_eq!(
                    lv.live_in[pc].contains(usize::from(reg)),
                    brute_force_live_in(&kernel, pc, reg),
                    "case {case} pc {pc} reg {reg}"
                );
            }
        }
    }
}

/// Whatever the pipeline emits passes the static held-state verifier and
/// structural validation (on random structured kernels).
#[test]
fn pipeline_output_verifies() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xE005 + case);
        let kernel = common::gen_kernel(&mut rng);
        let es = rng.range(1, 5) as u16;
        let cfg = GpuConfig::test_tiny();
        let compiled = compile(
            &kernel,
            &cfg,
            &CompileOptions {
                force_es: Some(es * 2),
                force_apply: true,
            },
        )
        .expect("compile runs");
        compiled
            .kernel
            .validate()
            .expect("transformed kernel valid");
        if let Some(plan) = compiled.plan {
            verify_transformed(&compiled.kernel, plan.bs).expect("verifier clean");
            // The plan satisfies both deadlock rules.
            assert!(plan.srp_sections >= 1, "case {case}");
            let lv = analyze(&kernel);
            assert!(plan.bs >= barrier_live_max(&kernel, &lv), "case {case}");
        }
    }
}

/// Heuristic invariants: candidates partition the rounded register count,
/// viable ones obey the deadlock rules, and the chosen one (if any) is
/// viable.
#[test]
fn es_selection_invariants() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0xF006 + case);
        let regs = rng.range(6, 64) as u16;
        let tpc = rng.range(1, 16) as u32;
        let bl = rng.below(20) as u16;
        let cfg = GpuConfig::gtx480();
        let res = KernelResources::new(regs, 0, tpc * 32);
        let sel = es_select::select(&cfg, res, bl);
        let total = cfg.round_regs(regs) as u16;
        assert_eq!(sel.total_regs, total, "case {case}");
        for c in &sel.ranked {
            assert_eq!(c.es + c.bs, total, "case {case}");
            if c.viable {
                assert!(c.srp_sections >= 1, "case {case}");
                assert!(c.bs >= bl, "case {case}");
                assert!(c.es > 0, "case {case}");
            }
        }
        if let Some(chosen) = sel.chosen() {
            assert!(chosen.viable, "case {case}");
            // No viable candidate has strictly better selection occupancy.
            for c in &sel.ranked {
                if c.viable {
                    assert!(c.selection_warps <= chosen.selection_warps, "case {case}");
                }
            }
        }
    }
}

/// Occupancy is monotonically non-increasing in register demand.
#[test]
fn occupancy_monotonic() {
    for case in 0..128u64 {
        let mut rng = Rng::new(0x1007 + case);
        let tpc = rng.range(1, 16) as u32;
        let shmem = rng.below(24_000) as u32;
        let cfg = GpuConfig::gtx480();
        let mut last = u32::MAX;
        for regs in 1..=64u16 {
            let occ = regmutex_sim::theoretical(&cfg, KernelResources::new(regs, shmem, tpc * 32));
            assert!(
                occ.warps <= last,
                "case {case} regs {}: {} > {}",
                regs,
                occ.warps,
                last
            );
            last = occ.warps;
        }
    }
}

/// Generate a straight-line kernel over 10 registers ending in observable
/// stores, for compaction-focused properties.
fn gen_straight_line_10(rng: &mut Rng) -> Kernel {
    let n = rng.range(4, 40);
    let mut instrs = Vec::new();
    for _ in 0..n {
        let d = rng.below(10) as u16;
        let a = rng.below(10) as u16;
        let b = rng.below(10) as u16;
        let instr = match rng.below(5) {
            0 => Instr::new(Op::IAdd, Some(ArchReg(d)), vec![ArchReg(a), ArchReg(b)]),
            1 => Instr::new(Op::MovImm(u64::from(d * 31 + a)), Some(ArchReg(d)), vec![]),
            2 => Instr::new(Op::Xor, Some(ArchReg(d)), vec![ArchReg(a), ArchReg(b)]),
            3 => Instr::new(
                Op::IMad,
                Some(ArchReg(d)),
                vec![ArchReg(a), ArchReg(b), ArchReg(d)],
            ),
            _ => Instr::new(
                Op::St(regmutex_isa::Space::Global),
                None,
                vec![ArchReg(a), ArchReg(b)],
            ),
        };
        instrs.push(instr);
    }
    // Make every register's final value observable.
    for i in 0..10u16 {
        instrs.push(Instr::new(
            Op::St(regmutex_isa::Space::Global),
            None,
            vec![ArchReg(i), ArchReg((i + 1) % 10)],
        ));
    }
    instrs.push(Instr::new(Op::Exit, None, vec![]));
    Kernel {
        name: "sl10".into(),
        instrs,
        regs_per_thread: 10,
        shmem_per_cta: 0,
        threads_per_cta: 32,
        seed: 3,
    }
}

/// Compaction correctness, checked by execution: for any straight-line
/// program and any base-set size the pipeline accepts, the transformed
/// kernel leaves no extended-index access outside held regions AND produces
/// the exact same store checksum as the original.
#[test]
fn compaction_preserves_straightline_semantics() {
    use regmutex::{Session, Technique};
    use regmutex_sim::LaunchConfig;

    for case in 0..96u64 {
        let mut rng = Rng::new(0x2008 + case);
        let kernel = gen_straight_line_10(&mut rng);
        let es = rng.range(2, 8) as u16;

        let cfg = GpuConfig::test_tiny();
        let compiled = compile(
            &kernel,
            &cfg,
            &CompileOptions {
                force_es: Some(es & !1),
                force_apply: true,
            },
        )
        .expect("compile runs");
        let Some(plan) = compiled.plan else { continue };
        // Static index invariant via the verifier…
        verify_transformed(&compiled.kernel, plan.bs).expect("verifier clean");
        // …and dynamic equivalence via the simulator.
        let session = Session::with_options(
            cfg,
            CompileOptions {
                force_es: Some(es & !1),
                force_apply: true,
            },
        );
        let launch = LaunchConfig::new(2);
        let base = session
            .run(&kernel, launch, Technique::Baseline)
            .expect("baseline");
        let rm = session
            .run(&kernel, launch, Technique::RegMutex)
            .expect("regmutex");
        assert_eq!(
            base.stats.checksum, rm.stats.checksum,
            "case {case} (es {es}): checksum diverged"
        );
    }
}
