//! Integration: every workload completes under every technique, all
//! techniques agree functionally (store checksums), and the headline
//! orderings hold.

use regmutex_repro::prelude::*;

use regmutex::{cycle_reduction_percent, ALL_TECHNIQUES};
use regmutex_sim::LaunchConfig;

/// Reduced grids keep debug-mode runtime reasonable while still spanning
/// multiple CTA waves.
fn reduced_launch(w: &Workload) -> LaunchConfig {
    LaunchConfig::new(w.grid_ctas.min(60))
}

#[test]
fn all_workloads_all_techniques_agree_functionally() {
    for w in suite::all() {
        let session = Session::new(w.table_config());
        let compiled = session.compile(&w.kernel).expect("compile");
        let launch = reduced_launch(&w);
        let mut reference: Option<u64> = None;
        for t in ALL_TECHNIQUES {
            let rep = session
                .run_compiled(&compiled, launch, t)
                .unwrap_or_else(|e| panic!("{} under {t}: {e}", w.name));
            assert!(rep.cycles() > 0, "{} under {t}: zero cycles", w.name);
            match reference {
                None => reference = Some(rep.stats.checksum),
                Some(c) => assert_eq!(
                    c, rep.stats.checksum,
                    "{} under {t}: functional divergence",
                    w.name
                ),
            }
        }
    }
}

#[test]
fn regmutex_is_transformed_for_every_workload() {
    for w in suite::all() {
        let session = Session::new(w.table_config());
        let compiled = session.compile(&w.kernel).expect("compile");
        assert!(
            compiled.is_transformed(),
            "{}: no plan; rejects: {:?}",
            w.name,
            compiled.diagnostics.rejected
        );
        let plan = compiled.plan.unwrap();
        assert_eq!(plan.bs, w.table_bs, "{}", w.name);
    }
}

#[test]
fn fig7_regmutex_never_loses_badly_and_wins_on_average() {
    let session = Session::new(regmutex_sim::GpuConfig::gtx480());
    let mut total = 0.0;
    let mut n = 0u32;
    for w in suite::occupancy_limited() {
        let compiled = session.compile(&w.kernel).expect("compile");
        let launch = w.launch();
        let base = session
            .run_compiled(&compiled, launch, Technique::Baseline)
            .expect("baseline");
        let rm = session
            .run_compiled(&compiled, launch, Technique::RegMutex)
            .expect("regmutex");
        let red = cycle_reduction_percent(&base, &rm);
        assert!(red > -10.0, "{}: RegMutex regressed by {red:.1}%", w.name);
        total += red;
        n += 1;
    }
    let avg = total / f64::from(n);
    assert!(
        (5.0..=30.0).contains(&avg),
        "Fig 7 average reduction {avg:.1}% out of the paper's ballpark"
    );
}

#[test]
fn runs_are_deterministic() {
    let w = suite::by_name("CUTCP").expect("CUTCP exists");
    let session = Session::new(w.table_config());
    let compiled = session.compile(&w.kernel).expect("compile");
    let launch = reduced_launch(&w);
    let a = session
        .run_compiled(&compiled, launch, Technique::RegMutex)
        .expect("first run");
    let b = session
        .run_compiled(&compiled, launch, Technique::RegMutex)
        .expect("second run");
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.stats.checksum, b.stats.checksum);
    assert_eq!(a.stats.acquire_attempts, b.stats.acquire_attempts);
}

#[test]
fn storage_ordering_matches_paper() {
    let w = suite::by_name("BFS").expect("BFS exists");
    let session = Session::new(w.table_config());
    let compiled = session.compile(&w.kernel).expect("compile");
    let launch = reduced_launch(&w);
    let bits: Vec<(Technique, u64)> = ALL_TECHNIQUES
        .iter()
        .map(|&t| {
            let rep = session.run_compiled(&compiled, launch, t).expect("run");
            (t, rep.storage_overhead_bits)
        })
        .collect();
    let get = |t: Technique| bits.iter().find(|(x, _)| *x == t).unwrap().1;
    assert_eq!(get(Technique::Baseline), 0);
    assert_eq!(get(Technique::RegMutex), 384);
    assert_eq!(get(Technique::Rfv), 31_264);
    assert!(get(Technique::RegMutexPaired) < get(Technique::RegMutex));
    assert!(get(Technique::Rfv) / get(Technique::RegMutex) >= 81);
}
