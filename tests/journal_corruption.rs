//! Journal-corruption injection at the campaign level.
//!
//! The durability contract: whatever happens to the bytes on disk — torn
//! tails from a crash mid-write, flipped bits from a bad sector,
//! duplicated records from a replayed write — a resumed campaign either
//! recovers to output byte-identical to an uninterrupted run, or refuses
//! with a diagnosis. It never silently diverges. These tests corrupt a
//! real fuzz-campaign journal in each documented way and check exactly
//! that, using the on-disk record framing directly (magic + length +
//! checksum) so the corruption lands where a real fault would.

use std::path::{Path, PathBuf};

use regmutex_bench::Runner;
use regmutex_fuzz::{run_campaign, run_campaign_durable, CampaignConfig, FuzzJournal, FuzzRun};

fn dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "rmx-journal-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn campaign() -> CampaignConfig {
    CampaignConfig {
        seed: 0xc1,
        iters: 40,
        ..CampaignConfig::default()
    }
}

/// Run the campaign durably into `d`, returning the golden render of an
/// uninterrupted (journal-free) run for comparison.
fn seed_journal(d: &Path) -> String {
    let cfg = campaign();
    let golden = run_campaign(&cfg, &Runner::new(2)).render().0;
    let journal = FuzzJournal::create(d, &cfg).unwrap();
    match run_campaign_durable(&cfg, &Runner::new(2), Some(&journal), None) {
        FuzzRun::Complete(report) => assert_eq!(report.render().0, golden),
        FuzzRun::Checkpointed { .. } => unreachable!("no cancel installed"),
    }
    golden
}

/// Resume over whatever is on disk; the render must equal `golden`.
fn resume_matches(d: &Path, golden: &str) {
    let cfg = campaign();
    let journal = FuzzJournal::resume(d, &cfg).expect("recoverable journal");
    match run_campaign_durable(&cfg, &Runner::new(2), Some(&journal), None) {
        FuzzRun::Complete(report) => assert_eq!(
            report.render().0,
            golden,
            "corrupted-journal resume diverged from the golden run"
        ),
        FuzzRun::Checkpointed { .. } => unreachable!("no cancel installed"),
    }
}

/// Parse the on-disk framing and return each record's (start, total_len),
/// including the file header as record offsets' base. Framing:
/// 8-byte file header, then per record: 4-byte magic, 4-byte LE length,
/// 8-byte checksum, payload.
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut off = 8;
    while off + 16 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as usize;
        let total = 16 + len;
        if off + total > bytes.len() {
            break;
        }
        spans.push((off, total));
        off += total;
    }
    spans
}

fn journal_bytes(d: &Path) -> Vec<u8> {
    std::fs::read(d.join("journal.log")).unwrap()
}

fn write_journal(d: &Path, bytes: &[u8]) {
    std::fs::write(d.join("journal.log"), bytes).unwrap();
}

#[test]
fn bit_flip_in_a_record_is_quarantined_and_rerun() {
    let d = dir("bitflip");
    let golden = seed_journal(&d);
    let mut bytes = journal_bytes(&d);
    let spans = record_spans(&bytes);
    assert!(spans.len() > 2, "meta + per-kernel records expected");
    // Flip one payload bit in the second data record (the first is the
    // campaign meta — flipping that is the refusal test below).
    let (start, _) = spans[2];
    bytes[start + 16 + 1] ^= 0x10;
    write_journal(&d, &bytes);
    // The checksum catches it, the record is quarantined, the affected
    // kernel (and everything after the resulting gap) re-runs.
    resume_matches(&d, &golden);
}

#[test]
fn torn_tail_is_truncated_and_rerun() {
    let d = dir("torn");
    let golden = seed_journal(&d);
    let bytes = journal_bytes(&d);
    let spans = record_spans(&bytes);
    // Cut mid-way through the last record — a crash mid-append.
    let (last_start, last_total) = *spans.last().unwrap();
    write_journal(&d, &bytes[..last_start + last_total / 2]);
    resume_matches(&d, &golden);
}

#[test]
fn duplicated_records_keep_first_and_stay_identical() {
    let d = dir("dup");
    let golden = seed_journal(&d);
    let mut bytes = journal_bytes(&d);
    let spans = record_spans(&bytes);
    // Replay two whole records at the tail — a double-applied write
    // batch. Keep-first semantics make the duplicates inert.
    let (s1, t1) = spans[1];
    let (s2, t2) = spans[2];
    let dup: Vec<u8> = bytes[s1..s1 + t1]
        .iter()
        .chain(&bytes[s2..s2 + t2])
        .copied()
        .collect();
    bytes.extend_from_slice(&dup);
    write_journal(&d, &bytes);
    resume_matches(&d, &golden);
}

#[test]
fn corrupted_file_header_is_a_diagnosed_refusal() {
    let d = dir("header");
    let _ = seed_journal(&d);
    let mut bytes = journal_bytes(&d);
    bytes[3] ^= 0xff;
    write_journal(&d, &bytes);
    let err = FuzzJournal::resume(&d, &campaign()).expect_err("bad header must refuse");
    assert!(!err.is_empty());
}

#[test]
fn corrupted_meta_record_is_a_diagnosed_refusal_or_clean_restart() {
    let d = dir("meta");
    let golden = seed_journal(&d);
    let mut bytes = journal_bytes(&d);
    let (meta_start, _) = record_spans(&bytes)[0];
    bytes[meta_start + 16] ^= 0x01;
    write_journal(&d, &bytes);
    // The meta record fails its checksum and is quarantined; with no
    // verifiable campaign identity the resume must not trust any of the
    // journaled completions. Whichever way the implementation lands —
    // refusal or a from-scratch re-run — silent divergence is the one
    // forbidden outcome.
    let cfg = campaign();
    match FuzzJournal::resume(&d, &cfg) {
        Err(err) => assert!(!err.is_empty()),
        Ok(journal) => match run_campaign_durable(&cfg, &Runner::new(2), Some(&journal), None) {
            FuzzRun::Complete(report) => assert_eq!(report.render().0, golden),
            FuzzRun::Checkpointed { .. } => unreachable!("no cancel installed"),
        },
    }
}
