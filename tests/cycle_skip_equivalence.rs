//! Differential proof that event-driven cycle skipping is invisible.
//!
//! The fast-forward loop in `regmutex-sim` only ever skips cycles whose
//! steps it can prove would replay byte-for-byte, folding their stat deltas
//! in multiplicatively. These tests pin that equivalence end to end: every
//! registered workload, two techniques, three kernel seeds, and fault
//! campaigns (including one that must end in a deadlock verdict) produce
//! field-for-field identical [`SimStats`] with skipping on and off — the
//! only permitted differences are the two meta-counters the engine itself
//! maintains (`skipped_cycles`, `step_calls`).

use std::sync::Arc;

use regmutex::{RunError, Session, Technique};
use regmutex_sim::{
    FaultClass, FaultLog, FaultPlan, GpuConfig, LaunchConfig, Severity, SimError, SimStats,
};
use regmutex_workloads::{suite, Workload};

/// Zero the meta-counters that are *expected* to differ between the two
/// loops; every other field must match exactly.
fn strip(stats: &SimStats) -> SimStats {
    let mut s = stats.clone();
    s.skipped_cycles = 0;
    s.step_calls = 0;
    s
}

/// The workload's home architecture with skipping forced on or off.
fn cfg_for(w: &Workload, skipping: bool) -> GpuConfig {
    let mut cfg = w.table_config();
    cfg.cycle_skipping = skipping;
    cfg
}

/// The workload's home architecture as a whole-device simulation (every SM
/// instantiated — with `launch_for`'s capped grids the CTA split across SMs
/// is uneven, which is exactly what the parallel loop must not perturb)
/// sharded over `workers` device-loop threads.
fn cfg_whole_device(w: &Workload, workers: u32) -> GpuConfig {
    let mut cfg = w.table_config();
    cfg.simulated_sms = cfg.num_sms;
    cfg.sm_workers = workers;
    cfg
}

/// Worker counts the determinism sweeps pin: serial, even splits, and one
/// that leaves the last shard short (15 SMs / 7 workers → 3-SM shards with
/// a 1-SM tail; 4 workers → 4-SM shards with a 3-SM tail).
const WORKER_COUNTS: [u32; 4] = [1, 2, 4, 7];

/// Debug builds tick every cycle in the reference run, so shrink the grids:
/// a couple of waves per SM exercises admission, steady-state stalling, and
/// retirement without the full experiment runtime.
fn launch_for(w: &Workload, cfg: &GpuConfig) -> LaunchConfig {
    LaunchConfig::new(w.grid_ctas.min(2 * cfg.num_sms))
}

#[test]
fn every_workload_technique_and_seed_is_skip_invariant() {
    let mut any_skipped = false;
    for w in suite::all() {
        for technique in [Technique::Baseline, Technique::RegMutex] {
            for seed_step in 0..3u64 {
                // Distinct seeds perturb per-warp trip counts and divergence
                // outcomes, changing where the steady-state windows fall.
                let mut kernel = w.kernel.clone();
                kernel.seed = kernel.seed.wrapping_add(seed_step * 7919);

                let run = |skipping: bool| {
                    let cfg = cfg_for(&w, skipping);
                    let launch = launch_for(&w, &cfg);
                    Session::new(cfg)
                        .run(&kernel, launch, technique)
                        .unwrap_or_else(|e| {
                            panic!("{} ({technique}, seed step {seed_step}): {e}", w.name)
                        })
                };
                let skip = run(true);
                let tick = run(false);

                assert_eq!(
                    strip(&skip.stats),
                    strip(&tick.stats),
                    "{} ({technique}, seed step {seed_step}): stats diverge",
                    w.name
                );
                // The reference loop never fast-forwards; the skipping loop
                // must never do *more* work than it.
                assert_eq!(tick.stats.skipped_cycles, 0);
                assert!(skip.stats.step_calls <= tick.stats.step_calls);
                any_skipped |= skip.stats.skipped_cycles > 0;
            }
        }
    }
    assert!(
        any_skipped,
        "no workload fast-forwarded a single cycle: skipping is silently disabled"
    );
}

#[test]
fn every_workload_and_technique_is_sm_worker_invariant() {
    // Whole-device runs sharded across 1/2/4/7 device-loop workers must be
    // *field*-identical — not merely `strip`-identical: the parallel loop
    // reduces wake hints globally and merges stats in fixed SM-id order, so
    // even the meta-counters (`skipped_cycles` max-merge, `step_calls`) may
    // not move.
    for w in suite::all() {
        for technique in [Technique::Baseline, Technique::RegMutex] {
            let launch = launch_for(&w, &w.table_config());
            let run = |workers: u32| {
                Session::new(cfg_whole_device(&w, workers))
                    .run(&w.kernel, launch, technique)
                    .unwrap_or_else(|e| panic!("{} ({technique}, {workers} workers): {e}", w.name))
            };
            let serial = run(1);
            for workers in WORKER_COUNTS.into_iter().skip(1) {
                let sharded = run(workers);
                assert_eq!(
                    sharded.stats, serial.stats,
                    "{} ({technique}): stats diverge at sm_workers={workers}",
                    w.name
                );
            }
        }
    }
}

/// Run `w` under RegMutex with `plan` injected, returning the outcome and
/// what the injectors recorded.
fn run_faulted(
    w: &Workload,
    plan: &FaultPlan,
    skipping: bool,
) -> (Result<SimStats, RunError>, u64) {
    let cfg = cfg_for(w, skipping);
    let launch = launch_for(w, &cfg);
    let log = Arc::new(FaultLog::new());
    let res = Session::new(cfg)
        .run_faulted(
            &w.kernel,
            launch,
            Technique::RegMutex,
            plan,
            Arc::clone(&log),
        )
        .map(|rep| rep.stats);
    (res, log.injections())
}

#[test]
fn fault_campaigns_are_skip_invariant() {
    let w = suite::by_name("Gaussian").expect("registered workload");
    let home = w.table_config();

    // A transient latency spike: the engine must land on both spike edges
    // exactly so the latency change and the first-spike log note happen on
    // the same cycles as in the tick loop.
    let spike = FaultPlan::generate(FaultClass::MemLatencySpike, Severity::Light, 42, &home);
    // A delayed release: exercises the injector's steady() gate (no
    // fast-forward while a deferred release is in flight).
    let delayed = FaultPlan::generate(FaultClass::DelayedRelease, Severity::Light, 42, &home);

    for plan in [&spike, &delayed] {
        let (skip_res, skip_inj) = run_faulted(&w, plan, true);
        let (tick_res, tick_inj) = run_faulted(&w, plan, false);
        let skip_stats = skip_res.unwrap_or_else(|e| panic!("{}: {e}", plan.describe()));
        let tick_stats = tick_res.unwrap_or_else(|e| panic!("{}: {e}", plan.describe()));
        assert_eq!(
            strip(&skip_stats),
            strip(&tick_stats),
            "{}: stats diverge",
            plan.describe()
        );
        assert_eq!(
            skip_inj,
            tick_inj,
            "{}: injection counts diverge",
            plan.describe()
        );
    }
}

#[test]
fn deadlock_verdict_is_skip_invariant() {
    // A spike deeper than the no-progress bound: the run cannot finish, and
    // the skipping loop must pre-fire the deadlock detector with *exactly*
    // the verdict the tick loop grinds its way to — same cycle, same
    // diagnostics.
    let w = suite::by_name("Gaussian").expect("registered workload");
    let plan = FaultPlan::generate(
        FaultClass::MemLatencySpike,
        Severity::Severe,
        7,
        &w.table_config(),
    );

    let (skip_res, skip_inj) = run_faulted(&w, &plan, true);
    let (tick_res, tick_inj) = run_faulted(&w, &plan, false);

    let skip_err = skip_res.expect_err("severe spike must deadlock (skipping)");
    let tick_err = tick_res.expect_err("severe spike must deadlock (tick)");
    assert!(
        matches!(skip_err, RunError::Sim(SimError::Deadlock { .. })),
        "unexpected verdict: {skip_err:?}"
    );
    assert_eq!(skip_err, tick_err, "deadlock diagnostics diverge");
    assert_eq!(skip_inj, tick_inj, "injection counts diverge");
}

/// Whole-device faulted run at a given worker count.
fn run_faulted_workers(
    w: &Workload,
    plan: &FaultPlan,
    workers: u32,
) -> (Result<SimStats, RunError>, u64) {
    let cfg = cfg_whole_device(w, workers);
    let launch = launch_for(w, &cfg);
    let log = Arc::new(FaultLog::new());
    let res = Session::new(cfg)
        .run_faulted(
            &w.kernel,
            launch,
            Technique::RegMutex,
            plan,
            Arc::clone(&log),
        )
        .map(|rep| rep.stats);
    (res, log.injections())
}

#[test]
fn fault_campaigns_are_sm_worker_invariant() {
    // Every SM carries its own injector, so a whole-device campaign fires
    // on all 15 — stats *and* the shared fault log must agree with the
    // serial loop at every worker count (the `mem_extra` spike edges land
    // on globally agreed cycles).
    let w = suite::by_name("Gaussian").expect("registered workload");
    let home = w.table_config();
    let spike = FaultPlan::generate(FaultClass::MemLatencySpike, Severity::Light, 42, &home);
    let delayed = FaultPlan::generate(FaultClass::DelayedRelease, Severity::Light, 42, &home);

    for plan in [&spike, &delayed] {
        let (serial_res, serial_inj) = run_faulted_workers(&w, plan, 1);
        let serial_stats = serial_res.unwrap_or_else(|e| panic!("{}: {e}", plan.describe()));
        for workers in WORKER_COUNTS.into_iter().skip(1) {
            let (res, inj) = run_faulted_workers(&w, plan, workers);
            let stats =
                res.unwrap_or_else(|e| panic!("{} ({workers} workers): {e}", plan.describe()));
            assert_eq!(
                stats,
                serial_stats,
                "{}: stats diverge at sm_workers={workers}",
                plan.describe()
            );
            assert_eq!(
                inj,
                serial_inj,
                "{}: injection counts diverge at sm_workers={workers}",
                plan.describe()
            );
        }
    }
}

#[test]
fn deadlock_verdict_is_sm_worker_invariant() {
    // A whole-device deadlock: the parallel controller must fire the
    // no-progress detector on exactly the serial loop's cycle, name the
    // same oldest-progress SM, and carry the identical warp diagnostics —
    // even when that SM lives on a non-controller shard.
    let w = suite::by_name("Gaussian").expect("registered workload");
    let plan = FaultPlan::generate(
        FaultClass::MemLatencySpike,
        Severity::Severe,
        7,
        &w.table_config(),
    );

    let (serial_res, serial_inj) = run_faulted_workers(&w, &plan, 1);
    let serial_err = serial_res.expect_err("severe spike must deadlock (serial)");
    assert!(
        matches!(serial_err, RunError::Sim(SimError::Deadlock { .. })),
        "unexpected verdict: {serial_err:?}"
    );
    for workers in WORKER_COUNTS.into_iter().skip(1) {
        let (res, inj) = run_faulted_workers(&w, &plan, workers);
        let err = res.expect_err("severe spike must deadlock (sharded)");
        assert_eq!(
            err, serial_err,
            "deadlock diagnostics diverge at sm_workers={workers}"
        );
        assert_eq!(
            inj, serial_inj,
            "injection counts diverge at sm_workers={workers}"
        );
    }
}

#[test]
fn watchdog_verdict_is_sm_worker_invariant() {
    // An absolute cycle bound low enough that the run cannot finish: the
    // sharded loops must pre-fire `WatchdogExpired` with the same verdict
    // as the serial loop at every worker count.
    let w = suite::by_name("Gaussian").expect("registered workload");
    let launch = launch_for(&w, &w.table_config());
    let run = |workers: u32| {
        let mut cfg = cfg_whole_device(&w, workers);
        cfg.watchdog_cycles = 2_000;
        Session::new(cfg)
            .run(&w.kernel, launch, Technique::RegMutex)
            .map(|rep| rep.stats)
    };
    let serial_err = run(1).expect_err("bound too low to finish (serial)");
    assert!(
        matches!(
            serial_err,
            RunError::Sim(SimError::WatchdogExpired { limit: 2_000 })
        ),
        "unexpected verdict: {serial_err:?}"
    );
    for workers in WORKER_COUNTS.into_iter().skip(1) {
        let err = run(workers).expect_err("bound too low to finish (sharded)");
        assert_eq!(
            err, serial_err,
            "watchdog verdict diverges at sm_workers={workers}"
        );
    }
}
