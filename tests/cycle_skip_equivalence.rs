//! Differential proof that event-driven cycle skipping is invisible.
//!
//! The fast-forward loop in `regmutex-sim` only ever skips cycles whose
//! steps it can prove would replay byte-for-byte, folding their stat deltas
//! in multiplicatively. These tests pin that equivalence end to end: every
//! registered workload, two techniques, three kernel seeds, and fault
//! campaigns (including one that must end in a deadlock verdict) produce
//! field-for-field identical [`SimStats`] with skipping on and off — the
//! only permitted differences are the two meta-counters the engine itself
//! maintains (`skipped_cycles`, `step_calls`).

use std::sync::Arc;

use regmutex::{RunError, Session, Technique};
use regmutex_sim::{
    FaultClass, FaultLog, FaultPlan, GpuConfig, LaunchConfig, Severity, SimError, SimStats,
};
use regmutex_workloads::{suite, Workload};

/// Zero the meta-counters that are *expected* to differ between the two
/// loops; every other field must match exactly.
fn strip(stats: &SimStats) -> SimStats {
    let mut s = stats.clone();
    s.skipped_cycles = 0;
    s.step_calls = 0;
    s
}

/// The workload's home architecture with skipping forced on or off.
fn cfg_for(w: &Workload, skipping: bool) -> GpuConfig {
    let mut cfg = w.table_config();
    cfg.cycle_skipping = skipping;
    cfg
}

/// Debug builds tick every cycle in the reference run, so shrink the grids:
/// a couple of waves per SM exercises admission, steady-state stalling, and
/// retirement without the full experiment runtime.
fn launch_for(w: &Workload, cfg: &GpuConfig) -> LaunchConfig {
    LaunchConfig::new(w.grid_ctas.min(2 * cfg.num_sms))
}

#[test]
fn every_workload_technique_and_seed_is_skip_invariant() {
    let mut any_skipped = false;
    for w in suite::all() {
        for technique in [Technique::Baseline, Technique::RegMutex] {
            for seed_step in 0..3u64 {
                // Distinct seeds perturb per-warp trip counts and divergence
                // outcomes, changing where the steady-state windows fall.
                let mut kernel = w.kernel.clone();
                kernel.seed = kernel.seed.wrapping_add(seed_step * 7919);

                let run = |skipping: bool| {
                    let cfg = cfg_for(&w, skipping);
                    let launch = launch_for(&w, &cfg);
                    Session::new(cfg)
                        .run(&kernel, launch, technique)
                        .unwrap_or_else(|e| {
                            panic!("{} ({technique}, seed step {seed_step}): {e}", w.name)
                        })
                };
                let skip = run(true);
                let tick = run(false);

                assert_eq!(
                    strip(&skip.stats),
                    strip(&tick.stats),
                    "{} ({technique}, seed step {seed_step}): stats diverge",
                    w.name
                );
                // The reference loop never fast-forwards; the skipping loop
                // must never do *more* work than it.
                assert_eq!(tick.stats.skipped_cycles, 0);
                assert!(skip.stats.step_calls <= tick.stats.step_calls);
                any_skipped |= skip.stats.skipped_cycles > 0;
            }
        }
    }
    assert!(
        any_skipped,
        "no workload fast-forwarded a single cycle: skipping is silently disabled"
    );
}

/// Run `w` under RegMutex with `plan` injected, returning the outcome and
/// what the injectors recorded.
fn run_faulted(
    w: &Workload,
    plan: &FaultPlan,
    skipping: bool,
) -> (Result<SimStats, RunError>, u64) {
    let cfg = cfg_for(w, skipping);
    let launch = launch_for(w, &cfg);
    let log = Arc::new(FaultLog::new());
    let res = Session::new(cfg)
        .run_faulted(
            &w.kernel,
            launch,
            Technique::RegMutex,
            plan,
            Arc::clone(&log),
        )
        .map(|rep| rep.stats);
    (res, log.injections())
}

#[test]
fn fault_campaigns_are_skip_invariant() {
    let w = suite::by_name("Gaussian").expect("registered workload");
    let home = w.table_config();

    // A transient latency spike: the engine must land on both spike edges
    // exactly so the latency change and the first-spike log note happen on
    // the same cycles as in the tick loop.
    let spike = FaultPlan::generate(FaultClass::MemLatencySpike, Severity::Light, 42, &home);
    // A delayed release: exercises the injector's steady() gate (no
    // fast-forward while a deferred release is in flight).
    let delayed = FaultPlan::generate(FaultClass::DelayedRelease, Severity::Light, 42, &home);

    for plan in [&spike, &delayed] {
        let (skip_res, skip_inj) = run_faulted(&w, plan, true);
        let (tick_res, tick_inj) = run_faulted(&w, plan, false);
        let skip_stats = skip_res.unwrap_or_else(|e| panic!("{}: {e}", plan.describe()));
        let tick_stats = tick_res.unwrap_or_else(|e| panic!("{}: {e}", plan.describe()));
        assert_eq!(
            strip(&skip_stats),
            strip(&tick_stats),
            "{}: stats diverge",
            plan.describe()
        );
        assert_eq!(
            skip_inj,
            tick_inj,
            "{}: injection counts diverge",
            plan.describe()
        );
    }
}

#[test]
fn deadlock_verdict_is_skip_invariant() {
    // A spike deeper than the no-progress bound: the run cannot finish, and
    // the skipping loop must pre-fire the deadlock detector with *exactly*
    // the verdict the tick loop grinds its way to — same cycle, same
    // diagnostics.
    let w = suite::by_name("Gaussian").expect("registered workload");
    let plan = FaultPlan::generate(
        FaultClass::MemLatencySpike,
        Severity::Severe,
        7,
        &w.table_config(),
    );

    let (skip_res, skip_inj) = run_faulted(&w, &plan, true);
    let (tick_res, tick_inj) = run_faulted(&w, &plan, false);

    let skip_err = skip_res.expect_err("severe spike must deadlock (skipping)");
    let tick_err = tick_res.expect_err("severe spike must deadlock (tick)");
    assert!(
        matches!(skip_err, RunError::Sim(SimError::Deadlock { .. })),
        "unexpected verdict: {skip_err:?}"
    );
    assert_eq!(skip_err, tick_err, "deadlock diagnostics diverge");
    assert_eq!(skip_inj, tick_inj, "injection counts diverge");
}
