//! Integration: the paper's quantitative claims that must hold exactly.

use regmutex_repro::prelude::*;

use regmutex::storage;
use regmutex_compiler::es_select;
use regmutex_sim::{GpuConfig, KernelResources};

/// Table I, verbatim: (name, regs, |Bs|).
const TABLE1: [(&str, u16, u16); 16] = [
    ("BFS", 21, 18),
    ("CUTCP", 25, 20),
    ("DWT2D", 44, 38),
    ("HotSpot3D", 32, 24),
    ("MRI-Q", 21, 18),
    ("ParticleFilter", 32, 20),
    ("RadixSort", 33, 30),
    ("SAD", 30, 20),
    ("Gaussian", 12, 8),
    ("HeartWall", 28, 20),
    ("LavaMD", 37, 28),
    ("MergeSort", 15, 12),
    ("MonteCarlo", 13, 16 - 4),
    ("SPMV", 16, 12),
    ("SRAD", 18, 12),
    ("TPACF", 28, 20),
];

#[test]
fn table1_base_set_sizes_reproduce() {
    for (name, regs, bs) in TABLE1 {
        let w = suite::by_name(name).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(w.table_regs, regs, "{name}: register count");
        assert_eq!(w.table_bs, bs, "{name}: table |Bs|");
        let session = Session::new(w.table_config());
        let compiled = session.compile(&w.kernel).expect("compile");
        let plan = compiled
            .plan
            .unwrap_or_else(|| panic!("{name}: no plan: {:?}", compiled.diagnostics.rejected));
        assert_eq!(plan.bs, bs, "{name}: computed |Bs|");
    }
}

#[test]
fn section_iii_a2_worked_example() {
    // Kernel asks 24 regs; registers the only limit; candidates {2,4,6,8};
    // Es ∈ {4,6,8} reach full occupancy with 16/26/32 SRP sections; the
    // heuristic picks |Es| = 6.
    let cfg = GpuConfig::gtx480();
    let res = KernelResources::new(24, 0, 256);
    let sel = es_select::select(&cfg, res, 0);
    let es_values: Vec<u16> = sel.ranked.iter().map(|c| c.es).collect();
    for e in [2, 4, 6, 8] {
        assert!(es_values.contains(&e), "candidate {e} missing");
    }
    let by_es = |e: u16| sel.ranked.iter().find(|c| c.es == e).unwrap();
    assert_eq!(by_es(4).srp_sections, 16);
    assert_eq!(by_es(6).srp_sections, 26);
    assert_eq!(by_es(8).srp_sections, 32);
    assert_eq!(sel.chosen().unwrap().es, 6);
}

#[test]
fn section_iii_b1_storage_accounting() {
    let cfg = GpuConfig::gtx480();
    // "Total number of bits introduced into the baseline by RegMutex is 384."
    assert_eq!(storage::regmutex_bits(&cfg), 384);
    // "RFV ... requires 30,240 bits for the renaming table and 1024 bits
    // for register availability."
    assert_eq!(storage::rfv_bits(&cfg), 30_240 + 1_024);
    // "RegMutex reduces the additional structure storage cost by more than
    // 81x."
    assert!(storage::rfv_bits(&cfg) / storage::regmutex_bits(&cfg) >= 81);
}

#[test]
fn fermi_machine_model_matches_section_iv() {
    let cfg = GpuConfig::gtx480();
    assert_eq!(cfg.num_sms, 15, "15 SMs");
    assert_eq!(
        cfg.regs_per_sm * 4,
        128 * 1024,
        "128 KB register file per SM"
    );
    assert_eq!(cfg.num_schedulers, 2, "2 warp schedulers per SM");
    assert_eq!(cfg.max_warps_per_sm, 48, "Nw = 48");
    let half = GpuConfig::gtx480_half_rf();
    assert_eq!(
        half.regs_per_sm * 4,
        64 * 1024,
        "64 KB for the shrink study"
    );
}

#[test]
fn rounding_matches_table1_parentheses() {
    let cfg = GpuConfig::gtx480();
    let expect = [
        (21u16, 24u32),
        (25, 28),
        (44, 44),
        (32, 32),
        (33, 36),
        (30, 32),
        (12, 12),
        (28, 28),
        (37, 40),
        (15, 16),
        (13, 16),
        (16, 16),
        (18, 20),
    ];
    for (raw, rounded) in expect {
        assert_eq!(cfg.round_regs(raw), rounded, "round({raw})");
    }
}

#[test]
fn fig1_sample_utilization_is_fractional_and_fluctuating() {
    // "For the majority of the program execution only subsets of the
    // requested registers are alive."
    for name in [
        "CUTCP",
        "DWT2D",
        "HeartWall",
        "HotSpot3D",
        "ParticleFilter",
        "SAD",
    ] {
        let w = suite::by_name(name).expect("known app");
        let trace = regmutex_compiler::live_trace(&w.kernel, 20_000);
        assert!(!trace.truncated, "{name}: trace truncated");
        let mean = trace.mean_utilization();
        assert!(
            (20.0..80.0).contains(&mean),
            "{name}: mean utilization {mean:.0}% not fractional"
        );
        let p = trace.percentages();
        let peak = p.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            peak > 95.0,
            "{name}: the allocation is justified at the peak"
        );
    }
}
