//! End-to-end safety-net tests: deadlock rule 2 (no barrier while the
//! extended set is held) must be enforced somewhere — by the compiler's
//! verifier when it plans the transformation, or by the simulator's
//! deadlock detector when a violating kernel runs anyway. A violation must
//! never hang the process or complete with a wrong checksum.

use regmutex::Technique;
use regmutex_bench::chaos::{run_campaign, CampaignSpec};
use regmutex_compiler::{verify_transformed, RegPlan, VerifyError};
use regmutex_isa::{ArchReg, KernelBuilder};
use regmutex_sim::{run_kernel, GpuConfig, LaunchConfig, SimError};

fn r(i: u16) -> ArchReg {
    ArchReg(i)
}

/// A miniature mergesort-style phase: every warp touches extended
/// registers, then synchronises at a CTA barrier — with the acquire/release
/// pair (wrongly) spanning the barrier.
fn rule2_violating_kernel() -> regmutex_isa::Kernel {
    let mut b = KernelBuilder::new("mergesort-rule2");
    b.threads_per_cta(64); // two warps per CTA
    b.declared_regs(8);
    b.movi(r(0), 1);
    b.acq_es();
    b.movi(r(4), 2); // extended access (bs = 4)
    b.iadd(r(0), r(4), r(0));
    b.bar(); // deadlock rule 2 violation: barrier while held
    b.rel_es();
    b.st_global(r(0), r(0));
    b.exit();
    b.build().unwrap()
}

#[test]
fn compiler_verifier_rejects_barrier_while_held() {
    let k = rule2_violating_kernel();
    assert_eq!(
        verify_transformed(&k, 4),
        Err(VerifyError::BarrierWhileHeld { pc: 4 }),
        "the static verifier must flag the barrier inside the held region"
    );
}

#[test]
fn compiled_barrier_workloads_never_hold_across_barriers() {
    // The pipeline must never emit what the previous test rejects: for the
    // barrier-synchronised suite workloads, any applied plan's transformed
    // kernel passes the rule-2 verifier.
    for name in ["MergeSort", "HotSpot3D", "RadixSort"] {
        let w = regmutex_workloads::suite::by_name(name).unwrap();
        let compiled = regmutex_compiler::compile(
            &w.kernel,
            &w.table_config(),
            &regmutex_compiler::CompileOptions::default(),
        )
        .unwrap();
        if let Some(plan) = &compiled.plan {
            verify_transformed(&compiled.kernel, plan.bs)
                .unwrap_or_else(|e| panic!("{name}: compiler emitted a rule-2 violation: {e}"));
        }
    }
}

#[test]
fn simulator_detects_rule2_deadlock_with_diagnostics() {
    // Run the violating kernel anyway (as if a buggy compiler shipped it):
    // warp 0 takes the single SRP section and parks at the barrier; warp 1
    // parks at `acq.es`. The no-progress detector must report a structured
    // deadlock — naming both sides — rather than hanging or completing.
    let k = rule2_violating_kernel();
    let cfg = GpuConfig::test_tiny();
    let plan = RegPlan {
        bs: 4,
        es: 4,
        total_regs: 8,
        srp_sections: 1,
        occupancy_warps: 2,
    };
    let err = run_kernel(&cfg, &k, LaunchConfig::new(1), |_| {
        Box::new(regmutex::RegMutexManager::new(&cfg, &plan))
    })
    .expect_err("a rule-2 violation with one section must deadlock");
    match err {
        SimError::Deadlock {
            cycle,
            last_progress,
            sm_id,
            blocked_at_acquire,
            srp_holders,
        } => {
            assert!(cycle > last_progress);
            assert_eq!(sm_id, 0, "single simulated SM: snapshot must name it");
            assert_eq!(
                blocked_at_acquire,
                vec![1],
                "warp 1 should be parked at acq.es"
            );
            assert_eq!(srp_holders, vec![0], "warp 0 should hold the section");
            let msg = err_to_string(&SimError::Deadlock {
                cycle,
                last_progress,
                sm_id,
                blocked_at_acquire,
                srp_holders,
            });
            assert!(msg.contains("blocked at acq.es"), "{msg}");
            assert!(msg.contains("SRP held by"), "{msg}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

fn err_to_string(e: &SimError) -> String {
    format!("{e}")
}

#[test]
fn chaos_smoke_on_the_barrier_workload() {
    // One barrier-synchronised workload, one seed per matrix cell: the
    // safety net must absorb or catch all 11 injections — silent
    // corruption fails the campaign outright.
    let spec = CampaignSpec {
        workloads: vec!["MergeSort".into()],
        seeds: 1,
        technique: Technique::RegMutex,
        jobs: 4,
        watchdog_cycles: None,
        stall_multiplier: None,
    };
    let report = run_campaign(&spec).expect("campaign setup");
    assert_eq!(report.silent(), 0, "{}", report.render());
    assert!(report.detected() > 0, "{}", report.render());
}
