//! Property tests: for randomly generated structured kernels, the RegMutex
//! compilation pipeline preserves semantics (store checksums match the
//! baseline exactly) and never deadlocks, under every technique.
//!
//! Each case is generated from a fixed seed; a failing case's seed appears
//! in the assertion message, so `Rng::new(seed)` replays it exactly.

mod common;

use regmutex::{Session, Technique};
use regmutex_compiler::CompileOptions;
use regmutex_sim::{GpuConfig, LaunchConfig};

fn tiny() -> GpuConfig {
    GpuConfig::test_tiny()
}

/// The central compiler-correctness oracle: forced-|Es| RegMutex
/// compilation + execution produces exactly the baseline's checksum.
#[test]
fn regmutex_preserves_semantics() {
    for case in 0..48u64 {
        let mut rng = common::Rng::new(0xA001 + case);
        let kernel = common::gen_kernel(&mut rng);
        let es = rng.range(2, 6) as u16;
        let cfg = tiny();
        let launch = LaunchConfig::new(3);
        let baseline = Session::new(cfg.clone())
            .run(&kernel, launch, Technique::Baseline)
            .expect("baseline completes");
        let session = Session::with_options(
            cfg,
            CompileOptions {
                force_es: Some(es & !1),
                force_apply: true,
            },
        );
        let rm = session
            .run(&kernel, launch, Technique::RegMutex)
            .unwrap_or_else(|e| panic!("case {case}: regmutex failed: {e}"));
        assert_eq!(
            baseline.stats.checksum, rm.stats.checksum,
            "case {case} (es {es}): checksum diverged"
        );
    }
}

/// Paired-warps and the related-work techniques are functionally
/// transparent too, and none of them deadlocks.
#[test]
fn all_techniques_agree() {
    for case in 0..48u64 {
        let mut rng = common::Rng::new(0xB002 + case);
        let kernel = common::gen_kernel(&mut rng);
        let launch = LaunchConfig::new(4);
        let session = Session::new(tiny());
        let compiled = session.compile(&kernel).expect("compiles");
        let baseline = session
            .run_compiled(&compiled, launch, Technique::Baseline)
            .expect("baseline completes");
        for t in [
            Technique::RegMutex,
            Technique::RegMutexPaired,
            Technique::Rfv,
            Technique::Owf,
        ] {
            let rep = session
                .run_compiled(&compiled, launch, t)
                .unwrap_or_else(|e| panic!("case {case} {t}: {e}"));
            assert_eq!(
                baseline.stats.checksum, rep.stats.checksum,
                "case {case}: {t} diverged"
            );
        }
    }
}

/// The scheduler policy must never change functional results.
#[test]
fn scheduling_policy_is_functionally_transparent() {
    for case in 0..48u64 {
        let mut rng = common::Rng::new(0xC003 + case);
        let kernel = common::gen_kernel(&mut rng);
        let launch = LaunchConfig::new(3);
        let mut cfg = tiny();
        let gto = Session::new(cfg.clone())
            .run(&kernel, launch, Technique::Baseline)
            .expect("gto");
        cfg.policy = regmutex_sim::SchedulerPolicy::Lrr;
        let lrr = Session::new(cfg)
            .run(&kernel, launch, Technique::Baseline)
            .expect("lrr");
        assert_eq!(
            gto.stats.checksum, lrr.stats.checksum,
            "case {case}: scheduler policy changed results"
        );
    }
}

/// A deterministic sanity check that the generator produces kernels that do
/// get transformed (so the properties above are not vacuous).
#[test]
fn generator_produces_transformable_kernels() {
    use common::Seg;
    let segs = vec![
        (Seg::Load, false),
        (
            Seg::Loop {
                trips: 3,
                body: vec![Seg::Load, Seg::Spike(9)],
            },
            false,
        ),
        (Seg::Store, false),
    ];
    let kernel = common::build_kernel(&segs, 7);
    let session = Session::with_options(
        tiny(),
        CompileOptions {
            force_es: Some(4),
            force_apply: true,
        },
    );
    let compiled = session.compile(&kernel).expect("compiles");
    assert!(
        compiled.is_transformed(),
        "{:?}",
        compiled.diagnostics.rejected
    );
    assert!(compiled.diagnostics.acquires >= 1);
}
