//! Shared test support: a generator of random *structured* kernels for
//! property tests.
//!
//! Kernels are built from a segment grammar (ALU chains, memory accesses,
//! pressure spikes, loops, uniform/divergent skips, barriers) under a fixed
//! register discipline: persistent registers live for the whole kernel,
//! temporaries rotate through a small window, and spikes use the indices
//! above it. This mirrors how the workload generators are built, while
//! proptest explores the structural space.

use proptest::prelude::*;
use regmutex_isa::{ArchReg, Kernel, KernelBuilder, TripCount};

/// Number of persistent registers (r0..r3).
const PERSISTENT: u16 = 4;
/// Temp window (r4..r5).
const TEMPS: u16 = 2;
/// First spike register.
const SPIKE_LO: u16 = PERSISTENT + TEMPS;

/// One structural element of a generated kernel.
#[derive(Debug, Clone)]
pub enum Seg {
    /// `n` dependent ALU instructions on persistent registers.
    Alu(u8),
    /// A global load + consume (temp-register landing).
    Load,
    /// A global store of a persistent register.
    Store,
    /// A pressure spike of `n` extra registers.
    Spike(u8),
    /// A loop around a body.
    Loop {
        /// Trip count (1..=4).
        trips: u8,
        /// Loop body.
        body: Vec<Seg>,
    },
    /// A uniform forward skip over a body.
    Skip {
        /// Taken probability in permille.
        permille: u16,
        /// Skipped body.
        body: Vec<Seg>,
    },
    /// A divergent forward skip over a body.
    Diverge {
        /// Per-lane skip probability in permille.
        permille: u16,
        /// Skipped body.
        body: Vec<Seg>,
    },
    /// A CTA barrier (only emitted at top level).
    Barrier,
}

/// Proptest strategy for a segment tree.
pub fn seg_strategy(depth: u32) -> impl Strategy<Value = Seg> {
    let leaf = prop_oneof![
        (1u8..6).prop_map(Seg::Alu),
        Just(Seg::Load),
        Just(Seg::Store),
        (3u8..10).prop_map(Seg::Spike),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            ((1u8..4), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(trips, body)| Seg::Loop { trips, body }),
            ((0u16..1000), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(permille, body)| Seg::Skip { permille, body }),
            ((1u16..1000), prop::collection::vec(inner, 1..4))
                .prop_map(|(permille, body)| Seg::Diverge { permille, body }),
        ]
    })
}

/// Strategy for a whole kernel: a top-level segment list (with optional
/// barriers between segments) and a seed.
pub fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    (
        prop::collection::vec((seg_strategy(2), prop::bool::ANY), 1..6),
        any::<u64>(),
    )
        .prop_map(|(segs, seed)| build_kernel(&segs, seed))
}

fn r(i: u16) -> ArchReg {
    ArchReg(i)
}

fn emit(b: &mut KernelBuilder, seg: &Seg, next_temp: &mut u16) {
    match seg {
        Seg::Alu(n) => {
            for i in 0..*n {
                let d = r(u16::from(i) % PERSISTENT);
                b.iadd(d, r(0), r(u16::from(i + 1) % PERSISTENT));
            }
        }
        Seg::Load => {
            let t = r(PERSISTENT + (*next_temp % TEMPS));
            *next_temp += 1;
            b.ld_global(t, r(0));
            b.iadd(r(1), t, r(1));
        }
        Seg::Store => {
            b.st_global(r(0), r(1));
        }
        Seg::Spike(n) => {
            let n = u16::from(*n);
            for i in 0..n {
                b.xor(r(SPIKE_LO + i), r(i as u16 % PERSISTENT), r(1));
            }
            let mut i = 0;
            while i + 1 < n {
                b.imad(r(1), r(SPIKE_LO + i), r(SPIKE_LO + i + 1), r(1));
                i += 2;
            }
            if i < n {
                b.iadd(r(1), r(SPIKE_LO + i), r(1));
            }
        }
        Seg::Loop { trips, body } => {
            let top = b.here();
            for s in body {
                emit(b, s, next_temp);
            }
            b.bra_loop(top, TripCount::Fixed(u32::from(*trips)));
        }
        Seg::Skip { permille, body } => {
            let label = b.new_label();
            b.bra_if(label, *permille, Some(r(0)));
            for s in body {
                emit(b, s, next_temp);
            }
            b.place(label);
        }
        Seg::Diverge { permille, body } => {
            let label = b.new_label();
            b.bra_div(label, *permille, Some(r(0)));
            for s in body {
                emit(b, s, next_temp);
            }
            b.place(label);
        }
        Seg::Barrier => {
            b.bar();
        }
    }
}

/// Render a segment list into a valid kernel.
pub fn build_kernel(segs: &[(Seg, bool)], seed: u64) -> Kernel {
    let mut b = KernelBuilder::new("prop");
    b.threads_per_cta(64).seed(seed);
    for i in 0..PERSISTENT {
        b.movi(r(i), 0x1000 + u64::from(i));
    }
    let mut next_temp = 0;
    for (seg, barrier_after) in segs {
        emit(&mut b, seg, &mut next_temp);
        // Barriers only at top level, where the warp is converged.
        if *barrier_after {
            b.bar();
        }
    }
    // Make every persistent register observable.
    for i in 0..PERSISTENT {
        b.st_global(r(i), r((i + 1) % PERSISTENT));
    }
    b.exit();
    b.build().expect("generated kernel is structurally valid")
}
