//! Shared test support: a generator of random *structured* kernels for
//! property tests, plus the deterministic PRNG driving it.
//!
//! Kernels are built from a segment grammar (ALU chains, memory accesses,
//! pressure spikes, loops, uniform/divergent skips, barriers) under a fixed
//! register discipline: persistent registers live for the whole kernel,
//! temporaries rotate through a small window, and spikes use the indices
//! above it. This mirrors how the workload generators are built, while the
//! seeded PRNG explores the structural space reproducibly (every failure
//! message carries the case seed, so any counterexample replays exactly).

use regmutex_isa::{ArchReg, Kernel, KernelBuilder, TripCount};

/// Number of persistent registers (r0..r3).
const PERSISTENT: u16 = 4;
/// Temp window (r4..r5).
const TEMPS: u16 = 2;
/// First spike register.
const SPIKE_LO: u16 = PERSISTENT + TEMPS;

/// A small, fast, deterministic PRNG (xorshift64*) for property tests.
///
/// Dependency-free stand-in for an external generator crate: the container
/// builds offline, and a fixed seed makes every test run identical.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator; distinct seeds give well-separated streams.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// One structural element of a generated kernel.
#[derive(Debug, Clone)]
pub enum Seg {
    /// `n` dependent ALU instructions on persistent registers.
    Alu(u8),
    /// A global load + consume (temp-register landing).
    Load,
    /// A global store of a persistent register.
    Store,
    /// A pressure spike of `n` extra registers.
    Spike(u8),
    /// A loop around a body.
    Loop {
        /// Trip count (1..=4).
        trips: u8,
        /// Loop body.
        body: Vec<Seg>,
    },
    /// A uniform forward skip over a body.
    Skip {
        /// Taken probability in permille.
        permille: u16,
        /// Skipped body.
        body: Vec<Seg>,
    },
    /// A divergent forward skip over a body.
    Diverge {
        /// Per-lane skip probability in permille.
        permille: u16,
        /// Skipped body.
        body: Vec<Seg>,
    },
}

/// Generate one leaf segment.
fn gen_leaf(rng: &mut Rng) -> Seg {
    match rng.below(4) {
        0 => Seg::Alu(rng.range(1, 6) as u8),
        1 => Seg::Load,
        2 => Seg::Store,
        _ => Seg::Spike(rng.range(3, 10) as u8),
    }
}

/// Generate a segment tree of at most `depth` nesting levels, mirroring the
/// old `prop_recursive` strategy: half the draws below the depth limit
/// recurse into a loop/skip/diverge with a 1–3 segment body.
pub fn gen_seg(rng: &mut Rng, depth: u32) -> Seg {
    if depth == 0 || rng.flip() {
        return gen_leaf(rng);
    }
    let body: Vec<Seg> = (0..rng.range(1, 4))
        .map(|_| gen_seg(rng, depth - 1))
        .collect();
    match rng.below(3) {
        0 => Seg::Loop {
            trips: rng.range(1, 4) as u8,
            body,
        },
        1 => Seg::Skip {
            permille: rng.below(1000) as u16,
            body,
        },
        _ => Seg::Diverge {
            permille: rng.range(1, 1000) as u16,
            body,
        },
    }
}

/// Generate a whole kernel: a top-level segment list (with optional barriers
/// between segments) and a per-kernel data seed.
pub fn gen_kernel(rng: &mut Rng) -> Kernel {
    let segs: Vec<(Seg, bool)> = (0..rng.range(1, 6))
        .map(|_| (gen_seg(rng, 2), rng.flip()))
        .collect();
    let seed = rng.next_u64();
    build_kernel(&segs, seed)
}

fn r(i: u16) -> ArchReg {
    ArchReg(i)
}

fn emit(b: &mut KernelBuilder, seg: &Seg, next_temp: &mut u16) {
    match seg {
        Seg::Alu(n) => {
            for i in 0..*n {
                let d = r(u16::from(i) % PERSISTENT);
                b.iadd(d, r(0), r(u16::from(i + 1) % PERSISTENT));
            }
        }
        Seg::Load => {
            let t = r(PERSISTENT + (*next_temp % TEMPS));
            *next_temp += 1;
            b.ld_global(t, r(0));
            b.iadd(r(1), t, r(1));
        }
        Seg::Store => {
            b.st_global(r(0), r(1));
        }
        Seg::Spike(n) => {
            let n = u16::from(*n);
            for i in 0..n {
                b.xor(r(SPIKE_LO + i), r(i % PERSISTENT), r(1));
            }
            let mut i = 0;
            while i + 1 < n {
                b.imad(r(1), r(SPIKE_LO + i), r(SPIKE_LO + i + 1), r(1));
                i += 2;
            }
            if i < n {
                b.iadd(r(1), r(SPIKE_LO + i), r(1));
            }
        }
        Seg::Loop { trips, body } => {
            let top = b.here();
            for s in body {
                emit(b, s, next_temp);
            }
            b.bra_loop(top, TripCount::Fixed(u32::from(*trips)));
        }
        Seg::Skip { permille, body } => {
            let label = b.new_label();
            b.bra_if(label, *permille, Some(r(0)));
            for s in body {
                emit(b, s, next_temp);
            }
            b.place(label);
        }
        Seg::Diverge { permille, body } => {
            let label = b.new_label();
            b.bra_div(label, *permille, Some(r(0)));
            for s in body {
                emit(b, s, next_temp);
            }
            b.place(label);
        }
    }
}

/// Render a segment list into a valid kernel.
pub fn build_kernel(segs: &[(Seg, bool)], seed: u64) -> Kernel {
    let mut b = KernelBuilder::new("prop");
    b.threads_per_cta(64).seed(seed);
    for i in 0..PERSISTENT {
        b.movi(r(i), 0x1000 + u64::from(i));
    }
    let mut next_temp = 0;
    for (seg, barrier_after) in segs {
        emit(&mut b, seg, &mut next_temp);
        // Barriers only at top level, where the warp is converged.
        if *barrier_after {
            b.bar();
        }
    }
    // Make every persistent register observable.
    for i in 0..PERSISTENT {
        b.st_global(r(i), r((i + 1) % PERSISTENT));
    }
    b.exit();
    b.build().expect("generated kernel is structurally valid")
}
