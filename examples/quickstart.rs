//! Quickstart: build a register-hungry kernel, compile it with the RegMutex
//! pipeline, and compare baseline vs RegMutex execution on the simulated
//! GTX480.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use regmutex_repro::prelude::*;

use regmutex::cycle_reduction_percent;
use regmutex_isa::{ArchReg, TripCount};

fn r(i: u16) -> ArchReg {
    ArchReg(i)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A kernel that wants 24 registers per thread: a memory-bound loop with
    // a short high-pressure phase — the Fig 1 shape.
    let mut b = KernelBuilder::new("quickstart");
    b.threads_per_cta(256);
    b.movi(r(0), 1).movi(r(1), 2);
    let top = b.here();
    // Low pressure: chase pointers through global memory.
    let inner = b.here();
    b.ld_global(r(2), r(0));
    b.ld_global(r(3), r(1));
    b.iadd(r(0), r(2), r(0));
    b.iadd(r(1), r(3), r(1));
    b.bra_loop(inner, TripCount::Fixed(8));
    // High pressure: 22 temporaries live at once.
    for i in 2..24 {
        b.xor(r(i), r(0), r(1));
    }
    for i in (2..24).step_by(2) {
        b.imad(r(1), r(i), r(i + 1), r(1));
    }
    b.bra_loop(top, TripCount::Fixed(2));
    b.st_global(r(0), r(1));
    b.exit();
    let kernel = b.build()?;

    // Compile: liveness -> |Es| selection -> compaction -> injection.
    let session = Session::new(GpuConfig::gtx480());
    let compiled = session.compile(&kernel)?;
    let plan = compiled.plan.expect("kernel is register-limited");
    println!(
        "plan: |Bs| = {}, |Es| = {}, SRP sections = {}, occupancy {} warps",
        plan.bs, plan.es, plan.srp_sections, plan.occupancy_warps
    );
    println!(
        "injected {} acquire/release pairs, {} compaction MOVs\n",
        compiled.diagnostics.acquires, compiled.diagnostics.movs
    );

    // Simulate both techniques on a 180-CTA grid.
    let launch = LaunchConfig::new(180);
    let base = session.run_compiled(&compiled, launch, Technique::Baseline)?;
    let rm = session.run_compiled(&compiled, launch, Technique::RegMutex)?;
    assert_eq!(
        base.stats.checksum, rm.stats.checksum,
        "semantics preserved"
    );

    println!(
        "baseline : {:>8} cycles  (occupancy {}%)",
        base.cycles(),
        base.occupancy_percent()
    );
    println!(
        "regmutex : {:>8} cycles  (occupancy {}%, {} acquires, {:.1}% successful)",
        rm.cycles(),
        rm.occupancy_percent(),
        rm.stats.acquire_attempts,
        100.0 * rm.acquire_success_rate()
    );
    println!(
        "cycle reduction: {:.1}%",
        cycle_reduction_percent(&base, &rm)
    );
    Ok(())
}
