//! Extending the framework: plug a custom register-allocation technique into
//! the simulator by implementing `RegisterManager`.
//!
//! The example reimplements the conventional static/exclusive scheme from
//! scratch as a template: it shows the integration points a new technique
//! must cover — CTA admission, architected→physical translation, the
//! acquire/release hooks, and the ledger discipline that catches any
//! overlapping allocation immediately.
//!
//! ```sh
//! cargo run --release --example custom_technique
//! ```

use regmutex_repro::prelude::*;

use regmutex_isa::{ArchReg, CtaId, PhysReg, WarpId};
use regmutex_sim::manager::{AcquireResult, Ledger, RegisterManager};
use regmutex_sim::run_kernel;

/// A from-scratch static allocator: slot-indexed register blocks, claimed at
/// CTA admission, released at retirement.
struct MyStatic {
    rows_per_warp: u32,
    total_rows: u32,
}

impl MyStatic {
    fn new(cfg: &GpuConfig, regs: u16) -> Self {
        MyStatic {
            rows_per_warp: cfg.rows_per_warp(regs),
            total_rows: cfg.reg_rows_per_sm(),
        }
    }

    fn base(&self, w: WarpId) -> u32 {
        self.rows_per_warp * w.0
    }
}

impl RegisterManager for MyStatic {
    fn name(&self) -> &'static str {
        "my-static"
    }

    fn try_admit_cta(&mut self, ledger: &mut Ledger, _cta: CtaId, slots: &[WarpId]) -> bool {
        if slots
            .iter()
            .any(|w| (w.0 + 1) * self.rows_per_warp > self.total_rows)
        {
            return false;
        }
        for &w in slots {
            ledger.claim_range(self.base(w), self.rows_per_warp, w);
        }
        true
    }

    fn retire_cta(&mut self, ledger: &mut Ledger, _cta: CtaId, slots: &[WarpId]) {
        for &w in slots {
            ledger.release_range(self.base(w), self.rows_per_warp, w);
        }
    }

    fn try_acquire(&mut self, _l: &mut Ledger, _w: WarpId) -> AcquireResult {
        AcquireResult::NoOp
    }

    fn release(&mut self, _l: &mut Ledger, _w: WarpId) {}

    fn translate(&self, w: WarpId, reg: ArchReg) -> Option<PhysReg> {
        (u32::from(reg.0) < self.rows_per_warp).then(|| PhysReg(self.base(w) + u32::from(reg.0)))
    }

    fn on_warp_exit(&mut self, _l: &mut Ledger, _w: WarpId) {}
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = suite::by_name("MRI-Q").expect("known workload");
    let cfg = GpuConfig::gtx480();
    let regs = w.kernel.regs_per_thread;

    let stats = run_kernel(&cfg, &w.kernel, w.launch(), |_| {
        Box::new(MyStatic::new(&cfg, regs))
    })?;

    println!(
        "custom manager ran {} CTAs / {} warps in {} cycles (IPC {:.2}, checksum {:#x})",
        stats.ctas,
        stats.warps,
        stats.cycles,
        stats.ipc(),
        stats.checksum
    );
    Ok(())
}
