//! Register-file-shrink scenario (the paper's §IV-B): run a workload on an
//! architecture with half the register file and show that RegMutex lets it
//! keep (most of) its full-RF performance — "higher performance per dollar".
//!
//! ```sh
//! cargo run --release --example small_register_file
//! ```

use regmutex_repro::prelude::*;

use regmutex::cycle_increase_percent;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = Session::new(GpuConfig::gtx480());
    let half = Session::new(GpuConfig::gtx480_half_rf());

    for name in ["HeartWall", "SPMV", "TPACF", "MergeSort"] {
        let w = suite::by_name(name).expect("known workload");
        let reference = full.run(&w.kernel, w.launch(), Technique::Baseline)?;
        let compiled = half.compile(&w.kernel)?;
        let without = half.run_compiled(&compiled, w.launch(), Technique::Baseline)?;
        let with = half.run_compiled(&compiled, w.launch(), Technique::RegMutex)?;
        assert_eq!(reference.stats.checksum, with.stats.checksum);

        println!("== {name}: full-RF reference {} cycles", reference.cycles());
        println!(
            "   half RF, no technique : {:>8} cycles ({:+.1}%)",
            without.cycles(),
            cycle_increase_percent(&reference, &without)
        );
        println!(
            "   half RF, RegMutex     : {:>8} cycles ({:+.1}%)",
            with.cycles(),
            cycle_increase_percent(&reference, &with)
        );
        match compiled.plan {
            Some(p) => println!(
                "   plan: |Bs| = {}, |Es| = {}, {} SRP sections\n",
                p.bs, p.es, p.srp_sections
            ),
            None => println!("   plan: RegMutex not applied\n"),
        }
    }
    Ok(())
}
