//! A tour of the compiler pipeline (§III-A): liveness analysis, extended-set
//! size selection with the candidate table, acquire-region discovery, index
//! compaction, and the final transformed disassembly.
//!
//! ```sh
//! cargo run --release --example compiler_pipeline
//! ```

use regmutex_repro::prelude::*;

use regmutex_compiler::{analyze, barrier_live_max, es_select, live_trace};
use regmutex_sim::KernelResources;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = suite::by_name("BFS").expect("BFS exists");
    let cfg = GpuConfig::gtx480();

    // Step 1: register liveness analysis.
    let lv = analyze(&w.kernel);
    println!(
        "step 1 — liveness: {} instructions, peak pressure {} of {} declared regs",
        w.kernel.len(),
        lv.max_pressure(),
        w.kernel.regs_per_thread
    );
    let trace = live_trace(&w.kernel, 10_000);
    println!(
        "         dynamic utilization: mean {:.0}% of the allocation (Fig 1)",
        trace.mean_utilization()
    );

    // Step 2: extended-set size selection.
    let res = KernelResources::new(
        w.kernel.regs_per_thread,
        w.kernel.shmem_per_cta,
        w.kernel.threads_per_cta,
    );
    let sel = es_select::select(&cfg, res, barrier_live_max(&w.kernel, &lv));
    println!(
        "\nstep 2 — |Es| candidates (total {} regs):",
        sel.total_regs
    );
    for c in &sel.ranked {
        println!(
            "         |Es|={:<2} |Bs|={:<2} occupancy {:>2} warps, {:>2} SRP sections{}{}",
            c.es,
            c.bs,
            c.occupancy_warps,
            c.srp_sections,
            if c.majority_concurrent {
                ", majority-concurrent"
            } else {
                ""
            },
            if c.viable { "" } else { " (not viable)" },
        );
    }

    // Steps 3 & 4: compaction + injection via the full pipeline.
    let compiled = compile(&w.kernel, &cfg, &CompileOptions::default())?;
    let plan = compiled.plan.expect("BFS is register-limited");
    println!(
        "\nsteps 3-4 — chose |Bs|={} |Es|={}; injected {} acquire/release pairs, {} MOVs",
        plan.bs, plan.es, compiled.diagnostics.acquires, compiled.diagnostics.movs
    );

    println!("\ntransformed kernel:\n{}", compiled.kernel);
    Ok(())
}
