//! Building your own workload: compose the generator vocabulary from
//! `regmutex_workloads::gen` into a new application profile and push it
//! through the whole pipeline.
//!
//! The example models a "graph coloring" style kernel: an irregular
//! neighbor scan with divergent conflict checks and a palette-selection
//! spike, 26 registers per thread.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use regmutex_repro::prelude::*;

use regmutex::cycle_reduction_percent;
use regmutex_isa::TripCount;
use regmutex_workloads::gen::{dependent_loads, epilogue, pressure_spike, r, varied, SpikeStyle};

fn graph_coloring_kernel() -> regmutex_isa::Kernel {
    let mut b = KernelBuilder::new("GraphColoring");
    b.threads_per_cta(256).seed(0xC010);
    // Persistent: r0 vertex cursor, r1 color acc, r2 adjacency base,
    // r3 palette base, r4 conflict mask, r5 degree.
    for i in 0..6 {
        b.movi(r(i), 0x2000 + u64::from(i));
    }
    let rounds = b.here();
    {
        // Neighbor scan with a divergent conflict check.
        let neighbors = b.here();
        dependent_loads(&mut b, r(2), r(6), 1);
        let ok = b.new_label();
        b.bra_div(ok, 300, Some(r(6)));
        b.or(r(4), r(6), r(4));
        b.place(ok);
        b.bra_loop_pred(neighbors, varied(3, 5), r(5));
        // Palette selection spike: r6..r25 = 20; peak = 6 + 20 = 26.
        pressure_spike(&mut b, 6, 25, r(1), SpikeStyle::IntMad, &[r(2), r(3), r(4)]);
        b.st_global(r(3), r(1));
        b.bra_loop(rounds, TripCount::Fixed(3));
    }
    b.st_global(r(2), r(4));
    b.st_global(r(5), r(0));
    epilogue(&mut b, r(0), r(1));
    b.build().expect("kernel is structurally valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = graph_coloring_kernel();
    println!(
        "custom workload: {} regs/thread, {} instructions",
        kernel.regs_per_thread,
        kernel.len()
    );

    let session = Session::new(GpuConfig::gtx480());
    let compiled = session.compile(&kernel)?;
    match compiled.plan {
        Some(p) => println!(
            "heuristic plan: |Bs|={} |Es|={} with {} SRP sections",
            p.bs, p.es, p.srp_sections
        ),
        None => println!("not register-limited: RegMutex leaves it untouched"),
    }

    let launch = LaunchConfig::new(180);
    let base = session.run_compiled(&compiled, launch, Technique::Baseline)?;
    let rm = session.run_compiled(&compiled, launch, Technique::RegMutex)?;
    assert_eq!(base.stats.checksum, rm.stats.checksum);
    println!(
        "baseline {} cycles ({}% occupancy) -> regmutex {} cycles ({}%): {:.1}% reduction",
        base.cycles(),
        base.occupancy_percent(),
        rm.cycles(),
        rm.occupancy_percent(),
        cycle_reduction_percent(&base, &rm)
    );
    Ok(())
}
