//! Occupancy-boost scenario: run the paper's occupancy-limited workloads
//! (Fig 7 group) under every technique and print the comparison, including
//! the hardware storage each one costs — the paper's central trade-off.
//!
//! ```sh
//! cargo run --release --example occupancy_boost
//! ```

use regmutex_repro::prelude::*;

use regmutex::{cycle_reduction_percent, ALL_TECHNIQUES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(GpuConfig::gtx480());
    for w in suite::occupancy_limited().into_iter().take(3) {
        let compiled = session.compile(&w.kernel)?;
        let base = session.run_compiled(&compiled, w.launch(), Technique::Baseline)?;
        println!(
            "== {} ({} regs/thread, baseline occupancy {}%, {} cycles)",
            w.name,
            w.table_regs,
            base.occupancy_percent(),
            base.cycles()
        );
        for t in ALL_TECHNIQUES.into_iter().skip(1) {
            let rep = session.run_compiled(&compiled, w.launch(), t)?;
            assert_eq!(base.stats.checksum, rep.stats.checksum);
            println!(
                "   {:<16} {:>6.1}% reduction | occupancy {:>3}% | +{} bits of SM storage",
                rep.technique.to_string(),
                cycle_reduction_percent(&base, &rep),
                rep.occupancy_percent(),
                rep.storage_overhead_bits
            );
        }
        println!();
    }
    Ok(())
}
