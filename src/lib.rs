//! # regmutex-repro
//!
//! Facade crate for the RegMutex (ISCA 2018) reproduction workspace. It
//! re-exports the member crates under stable module names so the workspace's
//! `examples/` and `tests/` can use one import root:
//!
//! ```
//! use regmutex_repro::prelude::*;
//!
//! let cfg = GpuConfig::gtx480();
//! assert_eq!(cfg.max_warps_per_sm, 48);
//! ```
//!
//! See the individual crates for the real APIs:
//! - [`isa`] — the synthetic warp-level GPU instruction set,
//! - [`compiler`] — liveness analysis, |Es| selection, acquire/release
//!   injection, register index compaction,
//! - [`sim`] — the cycle-level SM simulator substrate,
//! - [`core`] — the RegMutex microarchitecture, baselines, and runner API,
//! - [`workloads`] — the 16 synthetic Table I benchmark kernels,
//! - [`fuzz`] — the differential fuzzing subsystem (generator, oracle,
//!   minimizer, campaign driver).

pub use regmutex as core;
pub use regmutex_compiler as compiler;
pub use regmutex_fuzz as fuzz;
pub use regmutex_isa as isa;
pub use regmutex_sim as sim;
pub use regmutex_workloads as workloads;

/// Commonly used items, re-exported for examples and integration tests.
pub mod prelude {
    pub use regmutex::{RunReport, Session, Technique};
    pub use regmutex_compiler::{compile, CompileOptions, CompiledKernel};
    pub use regmutex_isa::{Kernel, KernelBuilder};
    pub use regmutex_sim::{GpuConfig, LaunchConfig};
    pub use regmutex_workloads::{suite, Workload};
}
